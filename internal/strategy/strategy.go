// Package strategy implements the paper's strategies (§II): user-level
// programs that apply pattern actions in a specific order using the
// framework's primitives — epochs, epoch_flush, try_finish, and the actions'
// work hooks.
//
// Provided strategies, as in the paper: FixedPoint (rerun the action at
// every dependent vertex until quiescence), Once (apply the action to a
// vertex set once, reporting whether anything changed), Delta (Δ-stepping
// with per-rank buckets, one collective epoch per bucket), and
// DeltaDistributed (per-thread local buckets with try_finish-driven
// termination, §III-D).
//
// Strategies that install work hooks are constructed before Universe.Run
// (hooks are engine-global state); their Run method is then called SPMD
// from every rank's body.
package strategy

import (
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/obs"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
)

// FixedPoint is the paper's fixed_point strategy:
//
//	strategy fixed_point(action a, container vertices) {
//	  a.work(Vertex v) = { a(v) };
//	  epoch { for (v in vertices) a(v); }
//	}
type FixedPoint struct {
	a *pattern.BoundAction
}

// NewFixedPoint installs the rerun-on-dependency work hook on a. Call before
// Universe.Run.
func NewFixedPoint(a *pattern.BoundAction) *FixedPoint {
	a.SetWork(func(r *am.Rank, v distgraph.Vertex) { a.InvokeAsync(r, v) })
	return &FixedPoint{a: a}
}

// Run applies the action to this rank's seed vertices inside one collective
// epoch and returns when the whole system reaches a fixed point. Collective.
func (fp *FixedPoint) Run(r *am.Rank, seeds []distgraph.Vertex) {
	r.Epoch(func(ep *am.Epoch) {
		ph := r.Phase(obs.PhaseCollect)
		for _, v := range seeds {
			fp.a.Invoke(r, v)
		}
		ph.End()
	})
}

// Once is the paper's once strategy: apply the action to every vertex in the
// input set within one epoch and report whether any property-map
// modification changed a value anywhere in the system. It does not install a
// work hook (dependencies are ignored by default, §III-C). Collective.
func Once(r *am.Rank, a *pattern.BoundAction, vs []distgraph.Vertex) bool {
	return OnceOver(r, a, func() []distgraph.Vertex { return vs })
}

// OnceOver is Once with the vertex set evaluated lazily, inside the epoch
// body. The distinction matters for multi-process checkpoint/restart: a
// replacement process re-executes the algorithm with pre-restart epoch
// bodies skipped and its state restored at the restart epoch's entry, so a
// vertex set derived from property-map state (CC's conflicting-roots list)
// must be computed after that restore — i.e. inside the epoch — not in the
// inter-epoch code that a fast-forwarding replay runs against unrestored
// state. Collective.
func OnceOver(r *am.Rank, a *pattern.BoundAction, rootsOf func() []distgraph.Vertex) bool {
	a.ResetModified(r)
	r.Barrier()
	r.Epoch(func(ep *am.Epoch) {
		ph := r.Phase(obs.PhaseCollect)
		for _, v := range rootsOf() {
			a.Invoke(r, v)
		}
		ph.End()
	})
	return r.AllReduceOr(a.ModifiedLocal(r))
}

// Delta is the paper's Δ-stepping strategy (§II-A):
//
//	strategy delta(action a, container vertices, property-map m, delta Δ) {
//	  buckets B;
//	  for (v in vertices) B.insert(v, m[v], Δ);
//	  a.work(Vertex v) = { B.insert(v, m[v], Δ); }
//	  while (!B.empty()) { epoch { while (!B[i].empty()) a(B[i].pop()); } i++; }
//	}
//
// Each bucket is drained in its own collective epoch; work-hook inserts into
// the active bucket keep the epoch alive via the deferred-work counter, and
// inserts into later buckets carry over to later epochs.
type Delta struct {
	a       *pattern.BoundAction
	keys    *pmap.VertexWord
	delta   int64
	buckets []*Buckets

	// BucketEpochs counts per-bucket epochs executed (experiment metric).
	BucketEpochs int
}

// NewDelta installs the bucket-insert work hook on a. keys is the property
// map providing each vertex's numeric key (the paper's m); delta is the
// bucket width. Call before Universe.Run.
func NewDelta(u *am.Universe, a *pattern.BoundAction, keys *pmap.VertexWord, delta int64) *Delta {
	d := &Delta{a: a, keys: keys, delta: delta, buckets: make([]*Buckets, u.Ranks())}
	a.SetWork(func(r *am.Rank, v distgraph.Vertex) {
		d.buckets[r.ID()].Insert(v, keys.Get(r.ID(), v))
	})
	u.RegisterCheckpointer(d)
	return d
}

// Run executes Δ-stepping from this rank's seeds. Collective.
func (d *Delta) Run(r *am.Rank, seeds []distgraph.Vertex) {
	ph := r.Phase(obs.PhaseBuildCSR)
	b := NewBuckets(r, d.delta)
	d.buckets[r.ID()] = b
	for _, v := range seeds {
		b.Insert(v, d.keys.Get(r.ID(), v))
	}
	ph.End()
	r.Barrier()
	for {
		idx := int(r.AllReduceMin(int64(b.MinNonEmpty())))
		if idx == NoBucket {
			return
		}
		if r.ID() == 0 {
			d.BucketEpochs++
		}
		r.Epoch(func(ep *am.Epoch) {
			b.BeginBucket(idx)
			for {
				for {
					v, ok := b.Pop(idx)
					if !ok {
						break
					}
					d.a.Invoke(r, v)
				}
				if ep.TryFinish() {
					return
				}
			}
		})
		b.EndBucket()
	}
}

// DeltaLightHeavy is Δ-stepping with the light/heavy edge split the paper
// notes as a further optimization (§II-A: "relaxing heavy edges, which
// cannot insert more work into the current bucket, separately from light
// edges"). The pattern supplies two actions — relax_light guarded by
// weight < Δ and relax_heavy guarded by weight ≥ Δ — and the strategy
// drains each bucket with light relaxations (which may refill it), then
// relaxes the heavy edges of the settled vertices exactly once. The
// entry-local weight guards are hoisted by the planner's early-exit
// optimization, so heavy edges cost no messages during the light phase.
type DeltaLightHeavy struct {
	light, heavy *pattern.BoundAction
	keys         *pmap.VertexWord
	delta        int64
	buckets      []*Buckets

	// BucketEpochs counts light-phase epochs executed.
	BucketEpochs int
}

// NewDeltaLightHeavy installs bucket-insert work hooks on both actions.
// Call before Universe.Run.
func NewDeltaLightHeavy(u *am.Universe, light, heavy *pattern.BoundAction, keys *pmap.VertexWord, delta int64) *DeltaLightHeavy {
	d := &DeltaLightHeavy{light: light, heavy: heavy, keys: keys, delta: delta, buckets: make([]*Buckets, u.Ranks())}
	hook := func(r *am.Rank, v distgraph.Vertex) {
		d.buckets[r.ID()].Insert(v, keys.Get(r.ID(), v))
	}
	light.SetWork(hook)
	heavy.SetWork(hook)
	u.RegisterCheckpointer(d)
	return d
}

// Run executes light/heavy Δ-stepping from this rank's seeds. Collective.
func (d *DeltaLightHeavy) Run(r *am.Rank, seeds []distgraph.Vertex) {
	ph := r.Phase(obs.PhaseBuildCSR)
	b := NewBuckets(r, d.delta)
	d.buckets[r.ID()] = b
	for _, v := range seeds {
		b.Insert(v, d.keys.Get(r.ID(), v))
	}
	ph.End()
	r.Barrier()
	for {
		idx := int(r.AllReduceMin(int64(b.MinNonEmpty())))
		if idx == NoBucket {
			return
		}
		if r.ID() == 0 {
			d.BucketEpochs++
		}
		settled := map[distgraph.Vertex]bool{}
		r.Epoch(func(ep *am.Epoch) {
			b.BeginBucket(idx)
			for {
				for {
					v, ok := b.Pop(idx)
					if !ok {
						break
					}
					settled[v] = true
					d.light.Invoke(r, v)
				}
				if ep.TryFinish() {
					return
				}
			}
		})
		b.EndBucket()
		// Heavy phase: each vertex settled in this bucket relaxes its
		// heavy edges once; results land in later buckets.
		r.Epoch(func(ep *am.Epoch) {
			ph := r.Phase(obs.PhaseEmit)
			for v := range settled {
				d.heavy.Invoke(r, v)
			}
			ph.End()
		})
	}
}

// DeltaDistributed is the distributed Δ-stepping variant of §III-D: "every
// thread on every node has its own local buckets. When a thread runs out of
// work locally, it tries to terminate the epoch ... If ending the epoch is
// unsuccessful, the thread goes back to its local bucket structure and tries
// to perform more work."
type DeltaDistributed struct {
	a       *pattern.BoundAction
	keys    *pmap.VertexWord
	delta   int64
	threads int
	buckets [][]*Buckets // [rank][thread]

	// BucketEpochs counts per-bucket epochs executed.
	BucketEpochs int
}

// NewDeltaDistributed installs a work hook that files dependent vertices
// into the per-thread bucket selected by vertex hash. Call before
// Universe.Run.
func NewDeltaDistributed(u *am.Universe, a *pattern.BoundAction, keys *pmap.VertexWord, delta int64, threads int) *DeltaDistributed {
	if threads < 1 {
		threads = 1
	}
	d := &DeltaDistributed{
		a: a, keys: keys, delta: delta, threads: threads,
		buckets: make([][]*Buckets, u.Ranks()),
	}
	a.SetWork(func(r *am.Rank, v distgraph.Vertex) {
		lb := d.buckets[r.ID()]
		lb[int(uint32(v)*2654435761)%len(lb)].Insert(v, keys.Get(r.ID(), v))
	})
	u.RegisterCheckpointer(d)
	return d
}

// Run executes distributed Δ-stepping from this rank's seeds. Collective.
func (d *DeltaDistributed) Run(r *am.Rank, seeds []distgraph.Vertex) {
	ph := r.Phase(obs.PhaseBuildCSR)
	locals := make([]*Buckets, d.threads)
	for t := range locals {
		locals[t] = NewBuckets(r, d.delta)
	}
	d.buckets[r.ID()] = locals
	for _, v := range seeds {
		locals[int(uint32(v)*2654435761)%len(locals)].Insert(v, d.keys.Get(r.ID(), v))
	}
	ph.End()
	r.Barrier()
	for {
		min := int64(NoBucket)
		for _, lb := range locals {
			if m := int64(lb.MinNonEmpty()); m < min {
				min = m
			}
		}
		idx := int(r.AllReduceMin(min))
		if idx == NoBucket {
			return
		}
		if r.ID() == 0 {
			d.BucketEpochs++
		}
		r.EpochThreaded(d.threads, func(tid int, ep *am.Epoch) {
			lb := locals[tid]
			lb.BeginBucket(idx)
			for {
				for {
					v, ok := lb.Pop(idx)
					if !ok {
						break
					}
					d.a.Invoke(r, v)
				}
				if ep.TryFinish() {
					return
				}
			}
		})
		for _, lb := range locals {
			lb.EndBucket()
		}
	}
}
