package strategy

import (
	"fmt"
	"sort"

	"declpat/internal/ckpt"
	"declpat/internal/distgraph"
)

// Serialized checkpoint support (am.SerializedCheckpointer) for the
// Δ-stepping bucket structures. A bucket snapshot is a map from bucket index
// to vertex list; indices are encoded in sorted order so identical state
// yields identical bytes. The nil snapshot (strategy not yet running) is a
// zero-length encoding.

func encodeBucketsSnap(e *ckpt.Enc, s *bucketsSnap) {
	if s == nil {
		e.U8(0)
		return
	}
	e.U8(1)
	idxs := make([]int, 0, len(s.items))
	for idx := range s.items {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	e.U32(uint32(len(idxs)))
	for _, idx := range idxs {
		e.I64(int64(idx))
		vs := s.items[idx]
		e.U32(uint32(len(vs)))
		for _, v := range vs {
			e.U32(uint32(v))
		}
	}
}

func decodeBucketsSnap(d *ckpt.Dec) *bucketsSnap {
	if d.U8() == 0 {
		return nil
	}
	n := int(d.U32())
	items := make(map[int][]distgraph.Vertex, n)
	for i := 0; i < n && d.Err == nil; i++ {
		idx := int(d.I64())
		cnt := int(d.U32())
		if d.Err != nil {
			break
		}
		vs := make([]distgraph.Vertex, 0, cnt)
		for j := 0; j < cnt && d.Err == nil; j++ {
			vs = append(vs, distgraph.Vertex(d.U32()))
		}
		items[idx] = vs
	}
	return &bucketsSnap{items: items}
}

func encodeSingleBuckets(snap any) ([]byte, error) {
	var e ckpt.Enc
	if snap == nil {
		encodeBucketsSnap(&e, nil)
		return e.B, nil
	}
	s, ok := snap.(*bucketsSnap)
	if !ok {
		return nil, fmt.Errorf("strategy: bucket snapshot has type %T, want *bucketsSnap", snap)
	}
	encodeBucketsSnap(&e, s)
	return e.B, nil
}

func decodeSingleBuckets(data []byte) (any, error) {
	d := ckpt.Dec{B: data}
	s := decodeBucketsSnap(&d)
	if err := d.Done(true); err != nil {
		return nil, fmt.Errorf("strategy: bucket snapshot: %w", err)
	}
	if s == nil {
		return nil, nil
	}
	return s, nil
}

// EncodeSnapshot serializes a Delta bucket snapshot
// (am.SerializedCheckpointer).
func (d *Delta) EncodeSnapshot(snap any) ([]byte, error) { return encodeSingleBuckets(snap) }

// DecodeSnapshot parses a Delta bucket snapshot (am.SerializedCheckpointer).
func (d *Delta) DecodeSnapshot(data []byte) (any, error) { return decodeSingleBuckets(data) }

// EncodeSnapshot serializes a DeltaLightHeavy bucket snapshot
// (am.SerializedCheckpointer).
func (d *DeltaLightHeavy) EncodeSnapshot(snap any) ([]byte, error) { return encodeSingleBuckets(snap) }

// DecodeSnapshot parses a DeltaLightHeavy bucket snapshot
// (am.SerializedCheckpointer).
func (d *DeltaLightHeavy) DecodeSnapshot(data []byte) (any, error) { return decodeSingleBuckets(data) }

// EncodeSnapshot serializes a DeltaDistributed snapshot: a presence byte,
// then one bucket snapshot per worker thread (am.SerializedCheckpointer).
func (d *DeltaDistributed) EncodeSnapshot(snap any) ([]byte, error) {
	var e ckpt.Enc
	if snap == nil {
		e.U8(0)
		return e.B, nil
	}
	snaps, ok := snap.([]*bucketsSnap)
	if !ok {
		return nil, fmt.Errorf("strategy: distributed bucket snapshot has type %T, want []*bucketsSnap", snap)
	}
	e.U8(1)
	e.U32(uint32(len(snaps)))
	for _, s := range snaps {
		encodeBucketsSnap(&e, s)
	}
	return e.B, nil
}

// DecodeSnapshot parses a DeltaDistributed snapshot
// (am.SerializedCheckpointer).
func (d *DeltaDistributed) DecodeSnapshot(data []byte) (any, error) {
	dec := ckpt.Dec{B: data}
	if dec.U8() == 0 {
		if err := dec.Done(true); err != nil {
			return nil, fmt.Errorf("strategy: distributed bucket snapshot: %w", err)
		}
		return nil, nil
	}
	n := int(dec.U32())
	snaps := make([]*bucketsSnap, 0, n)
	for i := 0; i < n && dec.Err == nil; i++ {
		snaps = append(snaps, decodeBucketsSnap(&dec))
	}
	if err := dec.Done(true); err != nil {
		return nil, fmt.Errorf("strategy: distributed bucket snapshot: %w", err)
	}
	return snaps, nil
}
