package strategy

import (
	"sync"

	"declpat/internal/am"
	"declpat/internal/distgraph"
)

// Buckets is the thread-safe bucket structure of the Δ-stepping strategy
// (§II-A: "the Δ-stepping strategy has to provide a thread-safe buckets data
// structure"). A vertex with key k lives in bucket k/Δ.
//
// Buckets integrates with epoch termination detection: while a global bucket
// index is active (BeginBucket), items inserted into that bucket — or an
// earlier one — register as deferred rank-local work (Epoch.AuxAdd) so
// try_finish cannot end the epoch while bucket work remains anywhere.
type Buckets struct {
	mu      sync.Mutex
	delta   int64
	items   map[int][]distgraph.Vertex
	counted map[int]int
	cur     int
	rank    *am.Rank
}

// NewBuckets creates a bucket structure for rank r with width delta.
func NewBuckets(r *am.Rank, delta int64) *Buckets {
	if delta <= 0 {
		panic("strategy: delta must be positive")
	}
	return &Buckets{
		delta:   delta,
		items:   map[int][]distgraph.Vertex{},
		counted: map[int]int{},
		cur:     -1,
		rank:    r,
	}
}

// Index returns the bucket index for key.
func (b *Buckets) Index(key int64) int {
	if key < 0 {
		return 0
	}
	return int(key / b.delta)
}

// Insert files v under key. Inserts into the active bucket count as deferred
// epoch work; inserts into other buckets (later ones, or earlier ones after
// an improvement) are picked up by a later per-bucket epoch.
func (b *Buckets) Insert(v distgraph.Vertex, key int64) {
	idx := b.Index(key)
	b.mu.Lock()
	b.items[idx] = append(b.items[idx], v)
	if idx == b.cur {
		b.counted[idx]++
		b.rank.AuxAdd(1)
	}
	b.mu.Unlock()
}

// Pop removes one vertex from bucket idx.
func (b *Buckets) Pop(idx int) (distgraph.Vertex, bool) {
	b.mu.Lock()
	s := b.items[idx]
	if len(s) == 0 {
		b.mu.Unlock()
		return 0, false
	}
	v := s[len(s)-1]
	b.items[idx] = s[:len(s)-1]
	if b.counted[idx] > 0 {
		b.counted[idx]--
		b.rank.AuxAdd(-1)
	}
	b.mu.Unlock()
	return v, true
}

// Len returns the number of vertices currently in bucket idx.
func (b *Buckets) Len(idx int) int {
	b.mu.Lock()
	n := len(b.items[idx])
	b.mu.Unlock()
	return n
}

// MinNonEmpty returns the smallest non-empty bucket index, or sentinel (a
// large value) when all buckets are empty.
const NoBucket = int(^uint(0) >> 1) // max int

func (b *Buckets) MinNonEmpty() int {
	b.mu.Lock()
	min := NoBucket
	for idx, s := range b.items {
		if len(s) > 0 && idx < min {
			min = idx
		}
	}
	b.mu.Unlock()
	return min
}

// BeginBucket activates bucket idx inside an epoch: its current contents
// (and all future inserts at or below idx) register as deferred work. Must
// be called at the start of the epoch body, before processing.
func (b *Buckets) BeginBucket(idx int) {
	b.mu.Lock()
	b.cur = idx
	if pre := len(b.items[idx]) - b.counted[idx]; pre > 0 {
		b.counted[idx] += pre
		b.rank.AuxAdd(int64(pre))
	}
	b.mu.Unlock()
}

// EndBucket deactivates the bucket after its epoch; leftover aux accounting
// is cleared by the epoch machinery itself.
func (b *Buckets) EndBucket() {
	b.mu.Lock()
	b.cur = -1
	for i := range b.counted {
		delete(b.counted, i)
	}
	b.mu.Unlock()
}
