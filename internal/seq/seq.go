// Package seq provides simple sequential reference implementations used to
// validate the distributed algorithms and to serve as experiment baselines:
// Dijkstra, Bellman–Ford, BFS, union-find connected components, and widest
// path. They operate directly on edge lists / adjacency built on one
// machine.
package seq

import (
	"container/heap"
	"math"

	"declpat/internal/distgraph"
)

// Inf is the conventional "unreached" distance.
const Inf int64 = math.MaxInt64

// adjacency builds a simple adjacency list from an edge list.
func adjacency(n int, edges []distgraph.Edge, symmetric bool) [][]halfEdge {
	adj := make([][]halfEdge, n)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], halfEdge{to: e.Dst, w: e.W})
		if symmetric {
			adj[e.Dst] = append(adj[e.Dst], halfEdge{to: e.Src, w: e.W})
		}
	}
	return adj
}

type halfEdge struct {
	to distgraph.Vertex
	w  int64
}

type pqItem struct {
	v distgraph.Vertex
	d int64
}

type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].d < p[j].d }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }

// Dijkstra computes single-source shortest path distances from s over the
// directed edge list (non-negative weights). Unreached vertices get Inf.
func Dijkstra(n int, edges []distgraph.Edge, s distgraph.Vertex) []int64 {
	adj := adjacency(n, edges, false)
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[s] = 0
	q := &pq{{v: s, d: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, e := range adj[it.v] {
			if nd := it.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(q, pqItem{v: e.to, d: nd})
			}
		}
	}
	return dist
}

// BellmanFord computes SSSP distances by iterating edge relaxations to a
// fixed point; it also returns the number of full passes performed.
func BellmanFord(n int, edges []distgraph.Edge, s distgraph.Vertex) (dist []int64, passes int) {
	dist = make([]int64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[s] = 0
	for {
		passes++
		changed := false
		for _, e := range edges {
			if dist[e.Src] == Inf {
				continue
			}
			if nd := dist[e.Src] + e.W; nd < dist[e.Dst] {
				dist[e.Dst] = nd
				changed = true
			}
		}
		if !changed {
			return dist, passes
		}
	}
}

// BFS computes hop counts from s over the directed edge list; unreached
// vertices get Inf.
func BFS(n int, edges []distgraph.Edge, s distgraph.Vertex) []int64 {
	adj := adjacency(n, edges, false)
	depth := make([]int64, n)
	for i := range depth {
		depth[i] = Inf
	}
	depth[s] = 0
	frontier := []distgraph.Vertex{s}
	for len(frontier) > 0 {
		var next []distgraph.Vertex
		for _, v := range frontier {
			for _, e := range adj[v] {
				if depth[e.to] == Inf {
					depth[e.to] = depth[v] + 1
					next = append(next, e.to)
				}
			}
		}
		frontier = next
	}
	return depth
}

// Components returns, for each vertex, a canonical component label (the
// smallest vertex id in its component), treating edges as undirected.
func Components(n int, edges []distgraph.Edge) []distgraph.Vertex {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for _, e := range edges {
		union(int(e.Src), int(e.Dst))
	}
	out := make([]distgraph.Vertex, n)
	// Two passes so every root compresses to the minimum id.
	min := make([]int, n)
	for i := range min {
		min[i] = n
	}
	for v := 0; v < n; v++ {
		r := find(v)
		if v < min[r] {
			min[r] = v
		}
	}
	for v := 0; v < n; v++ {
		out[v] = distgraph.Vertex(min[find(v)])
	}
	return out
}

// WidestPath computes, for each vertex, the maximum over paths from s of the
// minimum edge weight along the path (max-min "bottleneck" capacity).
// Unreached vertices get 0; the source gets Inf.
func WidestPath(n int, edges []distgraph.Edge, s distgraph.Vertex) []int64 {
	adj := adjacency(n, edges, false)
	cap_ := make([]int64, n)
	cap_[s] = Inf
	// Dijkstra variant with max-heap on capacity.
	q := &maxPQ{{v: s, d: Inf}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.d < cap_[it.v] {
			continue
		}
		for _, e := range adj[it.v] {
			c := it.d
			if e.w < c {
				c = e.w
			}
			if c > cap_[e.to] {
				cap_[e.to] = c
				heap.Push(q, pqItem{v: e.to, d: c})
			}
		}
	}
	return cap_
}

// Betweenness computes (unnormalized, directed) betweenness centrality from
// the given sources using Brandes' algorithm over unweighted shortest paths.
func Betweenness(n int, edges []distgraph.Edge, sources []distgraph.Vertex) []float64 {
	adj := adjacency(n, edges, false)
	radj := make([][]distgraph.Vertex, n)
	for _, e := range edges {
		radj[e.Dst] = append(radj[e.Dst], e.Src)
	}
	bc := make([]float64, n)
	for _, s := range sources {
		depth := make([]int64, n)
		sigma := make([]float64, n)
		delta := make([]float64, n)
		for i := range depth {
			depth[i] = -1
		}
		depth[s] = 0
		sigma[s] = 1
		var levels [][]distgraph.Vertex
		frontier := []distgraph.Vertex{s}
		for len(frontier) > 0 {
			levels = append(levels, frontier)
			var next []distgraph.Vertex
			for _, v := range frontier {
				for _, e := range adj[v] {
					if depth[e.to] == -1 {
						depth[e.to] = depth[v] + 1
						next = append(next, e.to)
					}
				}
			}
			// Path counts accumulate along level edges (parallel
			// edges contribute multiplicity, matching the
			// distributed implementation).
			for _, v := range frontier {
				for _, e := range adj[v] {
					if depth[e.to] == depth[v]+1 {
						sigma[e.to] += sigma[v]
					}
				}
			}
			frontier = next
		}
		for l := len(levels) - 1; l >= 1; l-- {
			for _, v := range levels[l] {
				for _, u := range radj[v] {
					if depth[u] == depth[v]-1 {
						delta[u] += sigma[u] / sigma[v] * (1 + delta[v])
					}
				}
			}
		}
		for v := 0; v < n; v++ {
			if distgraph.Vertex(v) != s && depth[v] >= 0 {
				bc[v] += delta[v]
			}
		}
	}
	return bc
}

type maxPQ []pqItem

func (p maxPQ) Len() int           { return len(p) }
func (p maxPQ) Less(i, j int) bool { return p[i].d > p[j].d }
func (p maxPQ) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *maxPQ) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *maxPQ) Pop() any          { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }
