package seq

import (
	"testing"
	"testing/quick"

	"declpat/internal/distgraph"
	"declpat/internal/gen"
)

func TestDijkstraSmall(t *testing.T) {
	//     0 →(5) 1 →(1) 2
	//     0 →(3) 2 →(7) 3
	edges := []distgraph.Edge{
		{Src: 0, Dst: 1, W: 5}, {Src: 1, Dst: 2, W: 1},
		{Src: 0, Dst: 2, W: 3}, {Src: 2, Dst: 3, W: 7},
	}
	d := Dijkstra(5, edges, 0)
	want := []int64{0, 5, 3, 10, Inf}
	for v := range want {
		if d[v] != want[v] {
			t.Fatalf("dist[%d]=%d want %d", v, d[v], want[v])
		}
	}
}

// Property: Dijkstra and Bellman–Ford agree on random graphs.
func TestDijkstraVsBellmanFordQuick(t *testing.T) {
	f := func(seed uint64) bool {
		edges := gen.ER(50, 200, gen.Weights{Min: 1, Max: 20}, seed)
		d1 := Dijkstra(50, edges, 0)
		d2, _ := BellmanFord(50, edges, 0)
		for v := range d1 {
			if d1[v] != d2[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the SSSP invariant from the paper holds on the output — for
// every edge (u,v): dist[v] <= dist[u] + w.
func TestSSSPInvariantQuick(t *testing.T) {
	f := func(seed uint64) bool {
		edges := gen.ER(40, 150, gen.Weights{Min: 1, Max: 9}, seed)
		d := Dijkstra(40, edges, 0)
		for _, e := range edges {
			if d[e.Src] != Inf && d[e.Src]+e.W < d[e.Dst] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSPath(t *testing.T) {
	edges := gen.Path(6, gen.Weights{Min: 4, Max: 4}, 0)
	d := BFS(6, edges, 0)
	for v := 0; v < 6; v++ {
		if d[v] != int64(v) {
			t.Fatalf("depth[%d]=%d", v, d[v])
		}
	}
}

func TestComponents(t *testing.T) {
	n, edges := gen.Components([]int{3, 1, 4}, 0)
	c := Components(n, edges)
	want := []distgraph.Vertex{0, 0, 0, 3, 4, 4, 4, 4}
	for v := range want {
		if c[v] != want[v] {
			t.Fatalf("comp[%d]=%d want %d (all: %v)", v, c[v], want[v], c)
		}
	}
}

// Property: component labels form a congruence over edges, and the label is
// the minimum member of each class.
func TestComponentsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		edges := gen.ER(60, 40, gen.Weights{}, seed)
		c := Components(60, edges)
		for _, e := range edges {
			if c[e.Src] != c[e.Dst] {
				return false
			}
		}
		for v, l := range c {
			if int(l) > v {
				return false
			}
			if c[l] != l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWidestPath(t *testing.T) {
	edges := []distgraph.Edge{
		{Src: 0, Dst: 1, W: 5}, {Src: 1, Dst: 3, W: 2},
		{Src: 0, Dst: 2, W: 3}, {Src: 2, Dst: 3, W: 3},
	}
	c := WidestPath(4, edges, 0)
	want := []int64{Inf, 5, 3, 3}
	for v := range want {
		if c[v] != want[v] {
			t.Fatalf("cap[%d]=%d want %d", v, c[v], want[v])
		}
	}
}
