package distgraph

import (
	"fmt"
	"sync"
)

// Edge is one input edge for the builder, with its weight payload (the
// paper's canonical edge property).
type Edge struct {
	Src, Dst Vertex
	W        int64
}

// EdgeRef identifies one stored directed edge copy. S and T are the edge's
// source and target; Slot indexes the storage arrays on the edge's locality
// rank. In marks an in-edge-list copy (locality = owner of T) as opposed to
// an out-edge-list copy (locality = owner of S). Per the paper's Def. 1 the
// locality of a generated edge is the vertex it was generated at, and the
// storage model guarantees edge data is present there.
type EdgeRef struct {
	S, T Vertex
	Slot uint32
	In   bool
}

// Src returns the edge's source vertex (the paper's src(e)).
func (e EdgeRef) Src() Vertex { return e.S }

// Trg returns the edge's target vertex (the paper's trg(e)).
func (e EdgeRef) Trg() Vertex { return e.T }

// GenVertex returns the vertex the edge was generated at, which is its
// locality.
func (e EdgeRef) GenVertex() Vertex {
	if e.In {
		return e.T
	}
	return e.S
}

// Options configures graph construction.
type Options struct {
	// Symmetrize stores a reverse copy of every input edge, giving
	// undirected-graph adjacency through the out-edge lists (used by CC).
	Symmetrize bool
	// Bidirectional additionally builds in-edge lists with duplicated
	// edge payloads (the paper's bidirectional storage model, §III-A).
	Bidirectional bool
}

// Graph is a distributed graph: topology plus the canonical weight payload,
// partitioned over ranks by a Distribution.
type Graph struct {
	dist     Distribution
	locals   []*LocalGraph
	numEdges int64 // stored out-edge copies
	opts     Options
}

// LocalGraph is one rank's CSR shard. Index arrays have length
// localVertices+1; slot s of local vertex li satisfies
// OutIndex[li] <= s < OutIndex[li+1].
type LocalGraph struct {
	Rank     int
	OutIndex []uint32
	OutDst   []Vertex
	OutW     []int64

	// In-edge lists (nil unless Options.Bidirectional). InCanonRank/Slot
	// give the canonical out-edge copy of each in-edge so generic edge
	// property maps can mirror their values (see pmap).
	InIndex     []uint32
	InSrc       []Vertex
	InW         []int64
	InCanonRank []int32
	InCanonSlot []uint32
}

// NumLocal returns the number of vertices stored on this rank.
func (lg *LocalGraph) NumLocal() int { return len(lg.OutIndex) - 1 }

// NumOutEdges returns the number of out-edge slots on this rank.
func (lg *LocalGraph) NumOutEdges() int { return len(lg.OutDst) }

// NumInEdges returns the number of in-edge slots on this rank.
func (lg *LocalGraph) NumInEdges() int { return len(lg.InSrc) }

// BuildParallel constructs the same graph as Build with one worker goroutine
// per rank: each worker scans the edge list and processes only the copies
// its rank stores, so the layout is identical to the sequential builder
// (deterministic) while construction parallelizes across ranks.
func BuildParallel(dist Distribution, edges []Edge, opts Options) *Graph {
	n := dist.NumVertices()
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			panic(fmt.Sprintf("distgraph: edge (%d,%d) out of range n=%d", e.Src, e.Dst, n))
		}
	}
	g := &Graph{dist: dist, opts: opts}
	R := dist.Ranks()
	g.locals = make([]*LocalGraph, R)
	var wg sync.WaitGroup
	counts := make([]int64, R)
	for r := 0; r < R; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lg := &LocalGraph{Rank: r}
			g.locals[r] = lg
			lg.OutIndex = make([]uint32, dist.LocalCount(r)+1)
			visit := func(fn func(s, d Vertex, w int64)) {
				for _, e := range edges {
					if dist.Owner(e.Src) == r {
						fn(e.Src, e.Dst, e.W)
					}
					if opts.Symmetrize && dist.Owner(e.Dst) == r {
						fn(e.Dst, e.Src, e.W)
					}
				}
			}
			visit(func(s, d Vertex, w int64) { lg.OutIndex[dist.Local(s)+1]++ })
			for i := 1; i < len(lg.OutIndex); i++ {
				lg.OutIndex[i] += lg.OutIndex[i-1]
			}
			m := int(lg.OutIndex[len(lg.OutIndex)-1])
			lg.OutDst = make([]Vertex, m)
			lg.OutW = make([]int64, m)
			counts[r] = int64(m)
			cursor := make([]uint32, lg.NumLocal())
			copy(cursor, lg.OutIndex[:lg.NumLocal()])
			visit(func(s, d Vertex, w int64) {
				li := dist.Local(s)
				slot := cursor[li]
				cursor[li]++
				lg.OutDst[slot] = d
				lg.OutW[slot] = w
			})
		}(r)
	}
	wg.Wait()
	for _, c := range counts {
		g.numEdges += c
	}
	if opts.Bidirectional {
		g.buildInEdges()
	}
	return g
}

// Build constructs a distributed graph over dist from the input edge list.
// Construction is a collective, performed once before algorithms run; edges
// may be in any order and may contain self-loops and parallel edges.
func Build(dist Distribution, edges []Edge, opts Options) *Graph {
	n := dist.NumVertices()
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			panic(fmt.Sprintf("distgraph: edge (%d,%d) out of range n=%d", e.Src, e.Dst, n))
		}
	}
	g := &Graph{dist: dist, opts: opts}
	R := dist.Ranks()
	g.locals = make([]*LocalGraph, R)
	for r := 0; r < R; r++ {
		g.locals[r] = &LocalGraph{Rank: r}
	}

	// A directed copy (s,d,w) is stored at owner(s); with Symmetrize the
	// reverse copy (d,s,w) is stored too.
	copies := 1
	if opts.Symmetrize {
		copies = 2
	}
	forEachCopy := func(fn func(s, d Vertex, w int64)) {
		for _, e := range edges {
			fn(e.Src, e.Dst, e.W)
			if opts.Symmetrize {
				fn(e.Dst, e.Src, e.W)
			}
		}
	}
	_ = copies

	// Pass 1: out-degrees.
	for r := 0; r < R; r++ {
		g.locals[r].OutIndex = make([]uint32, dist.LocalCount(r)+1)
	}
	forEachCopy(func(s, d Vertex, w int64) {
		lg := g.locals[dist.Owner(s)]
		lg.OutIndex[dist.Local(s)+1]++
	})
	for r := 0; r < R; r++ {
		lg := g.locals[r]
		for i := 1; i < len(lg.OutIndex); i++ {
			lg.OutIndex[i] += lg.OutIndex[i-1]
		}
		m := int(lg.OutIndex[len(lg.OutIndex)-1])
		lg.OutDst = make([]Vertex, m)
		lg.OutW = make([]int64, m)
		g.numEdges += int64(m)
	}

	// Pass 2: fill out arrays using per-rank cursors.
	cursors := make([][]uint32, R)
	for r := 0; r < R; r++ {
		lg := g.locals[r]
		cursors[r] = make([]uint32, lg.NumLocal())
		copy(cursors[r], lg.OutIndex[:lg.NumLocal()])
	}
	forEachCopy(func(s, d Vertex, w int64) {
		r := dist.Owner(s)
		li := dist.Local(s)
		slot := cursors[r][li]
		cursors[r][li]++
		lg := g.locals[r]
		lg.OutDst[slot] = d
		lg.OutW[slot] = w
	})

	if opts.Bidirectional {
		g.buildInEdges()
	}
	return g
}

// buildInEdges mirrors every stored out-edge copy onto the in-edge list of
// its target's owner, duplicating the weight payload and recording the
// canonical slot for property mirroring.
func (g *Graph) buildInEdges() {
	dist := g.dist
	R := dist.Ranks()
	for r := 0; r < R; r++ {
		g.locals[r].InIndex = make([]uint32, dist.LocalCount(r)+1)
	}
	g.forEachStored(func(rank int, slot uint32, s, d Vertex, w int64) {
		lg := g.locals[dist.Owner(d)]
		lg.InIndex[dist.Local(d)+1]++
	})
	for r := 0; r < R; r++ {
		lg := g.locals[r]
		for i := 1; i < len(lg.InIndex); i++ {
			lg.InIndex[i] += lg.InIndex[i-1]
		}
		m := int(lg.InIndex[len(lg.InIndex)-1])
		lg.InSrc = make([]Vertex, m)
		lg.InW = make([]int64, m)
		lg.InCanonRank = make([]int32, m)
		lg.InCanonSlot = make([]uint32, m)
	}
	cursors := make([][]uint32, R)
	for r := 0; r < R; r++ {
		lg := g.locals[r]
		cursors[r] = make([]uint32, lg.NumLocal())
		copy(cursors[r], lg.InIndex[:lg.NumLocal()])
	}
	g.forEachStored(func(rank int, slot uint32, s, d Vertex, w int64) {
		r := dist.Owner(d)
		li := dist.Local(d)
		islot := cursors[r][li]
		cursors[r][li]++
		lg := g.locals[r]
		lg.InSrc[islot] = s
		lg.InW[islot] = w
		lg.InCanonRank[islot] = int32(rank)
		lg.InCanonSlot[islot] = slot
	})
}

// forEachStored visits every stored out-edge copy as (rank, slot, src, dst, w).
func (g *Graph) forEachStored(fn func(rank int, slot uint32, s, d Vertex, w int64)) {
	for r, lg := range g.locals {
		for li := 0; li < lg.NumLocal(); li++ {
			s := g.dist.Global(r, li)
			for slot := lg.OutIndex[li]; slot < lg.OutIndex[li+1]; slot++ {
				fn(r, slot, s, lg.OutDst[slot], lg.OutW[slot])
			}
		}
	}
}

// Dist returns the graph's distribution.
func (g *Graph) Dist() Distribution { return g.dist }

// Options returns the construction options.
func (g *Graph) Options() Options { return g.opts }

// NumVertices returns the global vertex count.
func (g *Graph) NumVertices() int { return g.dist.NumVertices() }

// NumStoredEdges returns the number of stored out-edge copies (2× input
// edges when symmetrized).
func (g *Graph) NumStoredEdges() int64 { return g.numEdges }

// Local returns rank's shard.
func (g *Graph) Local(rank int) *LocalGraph { return g.locals[rank] }

// Owner returns the rank owning v.
func (g *Graph) Owner(v Vertex) int { return g.dist.Owner(v) }

// ForOutEdges calls fn for every out-edge of v. Must be called on v's owner
// rank (rank argument is the caller's rank, checked).
func (g *Graph) ForOutEdges(rank int, v Vertex, fn func(e EdgeRef)) {
	g.checkOwner(rank, v, "ForOutEdges")
	lg := g.locals[rank]
	li := g.dist.Local(v)
	for slot := lg.OutIndex[li]; slot < lg.OutIndex[li+1]; slot++ {
		fn(EdgeRef{S: v, T: lg.OutDst[slot], Slot: slot})
	}
}

// ForInEdges calls fn for every in-edge of v (requires Bidirectional). Must
// be called on v's owner rank.
func (g *Graph) ForInEdges(rank int, v Vertex, fn func(e EdgeRef)) {
	if !g.opts.Bidirectional {
		panic("distgraph: ForInEdges on a graph built without Bidirectional")
	}
	g.checkOwner(rank, v, "ForInEdges")
	lg := g.locals[rank]
	li := g.dist.Local(v)
	for slot := lg.InIndex[li]; slot < lg.InIndex[li+1]; slot++ {
		fn(EdgeRef{S: lg.InSrc[slot], T: v, Slot: slot, In: true})
	}
}

// ForAdj calls fn for every out-neighbor of v (the paper's adj generator;
// full adjacency on symmetrized graphs). Must be called on v's owner rank.
func (g *Graph) ForAdj(rank int, v Vertex, fn func(u Vertex)) {
	g.checkOwner(rank, v, "ForAdj")
	lg := g.locals[rank]
	li := g.dist.Local(v)
	for slot := lg.OutIndex[li]; slot < lg.OutIndex[li+1]; slot++ {
		fn(lg.OutDst[slot])
	}
}

// OutDegree returns v's out-degree; must be called on v's owner rank.
func (g *Graph) OutDegree(rank int, v Vertex) int {
	g.checkOwner(rank, v, "OutDegree")
	lg := g.locals[rank]
	li := g.dist.Local(v)
	return int(lg.OutIndex[li+1] - lg.OutIndex[li])
}

// Weight returns the payload of e; must be called on e's locality rank.
func (g *Graph) Weight(rank int, e EdgeRef) int64 {
	lg := g.locals[rank]
	if e.In {
		return lg.InW[e.Slot]
	}
	return lg.OutW[e.Slot]
}

func (g *Graph) checkOwner(rank int, v Vertex, op string) {
	if g.dist.Owner(v) != rank {
		panic(fmt.Sprintf("distgraph: %s(%d) on rank %d but owner is %d — remote access must go through messages",
			op, v, rank, g.dist.Owner(v)))
	}
}
