package distgraph

import (
	"fmt"
	"sort"
)

// Vertex is a global vertex identifier.
type Vertex uint32

// NilVertex is the sentinel "no vertex" value (the paper's NULL).
const NilVertex Vertex = ^Vertex(0)

// Distribution maps global vertices to owning ranks and dense per-rank local
// indices. Implementations must be pure functions of the vertex id so every
// rank computes identical answers (the basis of object-based addressing,
// paper §IV-D).
type Distribution interface {
	// Owner returns the rank that stores v.
	Owner(v Vertex) int
	// Local returns v's dense index within its owner's storage.
	Local(v Vertex) int
	// Global inverts (owner, local) back to the vertex id.
	Global(owner, local int) Vertex
	// LocalCount returns the number of vertices stored on rank.
	LocalCount(rank int) int
	// NumVertices returns the global vertex count.
	NumVertices() int
	// Ranks returns the number of ranks.
	Ranks() int
}

// BlockDist assigns contiguous blocks of ⌈n/ranks⌉ vertices per rank, the
// default distribution of distributed graph libraries such as PBGL.
type BlockDist struct {
	n, ranks, block int
}

// NewBlockDist creates a block distribution of n vertices over ranks.
func NewBlockDist(n, ranks int) BlockDist {
	if n < 0 || ranks <= 0 {
		panic(fmt.Sprintf("distgraph: invalid block distribution n=%d ranks=%d", n, ranks))
	}
	block := (n + ranks - 1) / ranks
	if block == 0 {
		block = 1
	}
	return BlockDist{n: n, ranks: ranks, block: block}
}

func (d BlockDist) Owner(v Vertex) int { return int(v) / d.block }
func (d BlockDist) Local(v Vertex) int { return int(v) % d.block }
func (d BlockDist) Global(owner, local int) Vertex {
	return Vertex(owner*d.block + local)
}
func (d BlockDist) LocalCount(rank int) int {
	lo := rank * d.block
	if lo >= d.n {
		return 0
	}
	hi := lo + d.block
	if hi > d.n {
		hi = d.n
	}
	return hi - lo
}
func (d BlockDist) NumVertices() int { return d.n }
func (d BlockDist) Ranks() int       { return d.ranks }

// CyclicDist deals vertices round-robin across ranks (vertex v lives on rank
// v mod ranks), which balances scale-free degree distributions better than
// blocks.
type CyclicDist struct {
	n, ranks int
}

// NewCyclicDist creates a cyclic distribution of n vertices over ranks.
func NewCyclicDist(n, ranks int) CyclicDist {
	if n < 0 || ranks <= 0 {
		panic(fmt.Sprintf("distgraph: invalid cyclic distribution n=%d ranks=%d", n, ranks))
	}
	return CyclicDist{n: n, ranks: ranks}
}

func (d CyclicDist) Owner(v Vertex) int { return int(v) % d.ranks }
func (d CyclicDist) Local(v Vertex) int { return int(v) / d.ranks }
func (d CyclicDist) Global(owner, local int) Vertex {
	return Vertex(local*d.ranks + owner)
}
func (d CyclicDist) LocalCount(rank int) int {
	return (d.n - rank + d.ranks - 1) / d.ranks
}
func (d CyclicDist) NumVertices() int { return d.n }
func (d CyclicDist) Ranks() int       { return d.ranks }

// HashDist scrambles vertex ids with a multiplicative hash before block
// assignment, decorrelating ownership from id locality (useful when the
// generator emits ids with structure, e.g. grid graphs).
type HashDist struct {
	n, ranks int
	perm     []Vertex // hash-ordered permutation position of each vertex
	inv      []Vertex
	counts   []int
	starts   []int
}

// NewHashDist creates a hashed distribution of n vertices over ranks. It
// materializes the permutation (O(n) memory) so Global stays O(1).
func NewHashDist(n, ranks int, seed uint64) *HashDist {
	if n < 0 || ranks <= 0 {
		panic(fmt.Sprintf("distgraph: invalid hash distribution n=%d ranks=%d", n, ranks))
	}
	d := &HashDist{n: n, ranks: ranks}
	type kv struct {
		h uint64
		v Vertex
	}
	keys := make([]kv, n)
	for i := range keys {
		x := uint64(i) + seed
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		x *= 0xc4ceb9fe1a85ec53
		x ^= x >> 33
		keys[i] = kv{h: x, v: Vertex(i)}
	}
	// Sort by hash; ties broken by id for determinism.
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].h != keys[j].h {
			return keys[i].h < keys[j].h
		}
		return keys[i].v < keys[j].v
	})
	d.perm = make([]Vertex, n) // vertex -> position
	d.inv = make([]Vertex, n)  // position -> vertex
	for pos, k := range keys {
		d.perm[k.v] = Vertex(pos)
		d.inv[pos] = k.v
	}
	block := (n + ranks - 1) / ranks
	if block == 0 {
		block = 1
	}
	d.counts = make([]int, ranks)
	d.starts = make([]int, ranks)
	for r := 0; r < ranks; r++ {
		lo := r * block
		if lo > n {
			lo = n
		}
		hi := lo + block
		if hi > n {
			hi = n
		}
		d.starts[r] = lo
		d.counts[r] = hi - lo
	}
	return d
}

func (d *HashDist) block() int {
	b := (d.n + d.ranks - 1) / d.ranks
	if b == 0 {
		b = 1
	}
	return b
}

func (d *HashDist) Owner(v Vertex) int { return int(d.perm[v]) / d.block() }
func (d *HashDist) Local(v Vertex) int { return int(d.perm[v]) % d.block() }
func (d *HashDist) Global(owner, local int) Vertex {
	return d.inv[owner*d.block()+local]
}
func (d *HashDist) LocalCount(rank int) int { return d.counts[rank] }
func (d *HashDist) NumVertices() int        { return d.n }
func (d *HashDist) Ranks() int              { return d.ranks }
