// Package distgraph implements the vertex-centric distributed graph of the
// paper's computational model (§III-A): every rank stores a portion of the
// vertices and all of their outgoing edges; a bidirectional graph
// additionally stores incoming edges with each vertex ("bidirectional
// describes the storage model rather than a property of the graph").
//
// Vertices are global ids; a Distribution maps each vertex to its owning
// rank and a dense local index, which property maps use for storage and the
// messaging layer uses for object-based addressing. Edge data reached
// through a generator is always local to the generation vertex: out-edges
// are stored with their source, and the bidirectional builder duplicates
// edge payload slots onto the in-edge lists, preserving the paper's locality
// rule (Def. 1) exactly.
package distgraph
