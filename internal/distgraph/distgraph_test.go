package distgraph

import (
	"testing"
	"testing/quick"
)

func distributions(n, ranks int) map[string]Distribution {
	return map[string]Distribution{
		"block":  NewBlockDist(n, ranks),
		"cyclic": NewCyclicDist(n, ranks),
		"hash":   NewHashDist(n, ranks, 42),
	}
}

func TestDistributionRoundTrip(t *testing.T) {
	for _, n := range []int{1, 7, 64, 1000} {
		for _, ranks := range []int{1, 2, 3, 8} {
			for name, d := range distributions(n, ranks) {
				total := 0
				for r := 0; r < ranks; r++ {
					total += d.LocalCount(r)
				}
				if total != n {
					t.Fatalf("%s n=%d ranks=%d: local counts sum to %d", name, n, ranks, total)
				}
				for v := Vertex(0); int(v) < n; v++ {
					o, l := d.Owner(v), d.Local(v)
					if o < 0 || o >= ranks {
						t.Fatalf("%s: owner(%d)=%d out of range", name, v, o)
					}
					if l < 0 || l >= d.LocalCount(o) {
						t.Fatalf("%s: local(%d)=%d out of range (count %d)", name, v, l, d.LocalCount(o))
					}
					if g := d.Global(o, l); g != v {
						t.Fatalf("%s: Global(Owner,Local) of %d = %d", name, v, g)
					}
				}
			}
		}
	}
}

func TestDistributionRoundTripQuick(t *testing.T) {
	f := func(nRaw uint16, ranksRaw uint8, vRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		ranks := int(ranksRaw)%7 + 1
		v := Vertex(int(vRaw) % n)
		for _, d := range distributions(n, ranks) {
			if d.Global(d.Owner(v), d.Local(v)) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// testEdges is a small weighted digraph used across builder tests.
//
//	0 -> 1 (w 5), 0 -> 2 (w 3), 1 -> 2 (w 1), 2 -> 3 (w 7), 3 -> 0 (w 2),
//	1 -> 1 self-loop (w 9), plus a parallel edge 0 -> 1 (w 6).
func testEdges() []Edge {
	return []Edge{
		{0, 1, 5}, {0, 2, 3}, {1, 2, 1}, {2, 3, 7}, {3, 0, 2}, {1, 1, 9}, {0, 1, 6},
	}
}

func collectOut(g *Graph, v Vertex) map[[2]Vertex][]int64 {
	got := map[[2]Vertex][]int64{}
	r := g.Owner(v)
	g.ForOutEdges(r, v, func(e EdgeRef) {
		k := [2]Vertex{e.Src(), e.Trg()}
		got[k] = append(got[k], g.Weight(r, e))
	})
	return got
}

func TestBuildDirected(t *testing.T) {
	for _, ranks := range []int{1, 2, 4} {
		d := NewBlockDist(4, ranks)
		g := Build(d, testEdges(), Options{})
		if g.NumStoredEdges() != 7 {
			t.Fatalf("ranks=%d: stored %d edges, want 7", ranks, g.NumStoredEdges())
		}
		out0 := collectOut(g, 0)
		if len(out0[[2]Vertex{0, 1}]) != 2 {
			t.Fatalf("ranks=%d: parallel edges 0->1 = %v", ranks, out0[[2]Vertex{0, 1}])
		}
		ws := out0[[2]Vertex{0, 1}]
		if !(ws[0] == 5 && ws[1] == 6 || ws[0] == 6 && ws[1] == 5) {
			t.Fatalf("weights of 0->1: %v", ws)
		}
		if g.OutDegree(g.Owner(1), 1) != 2 { // 1->2 and self-loop
			t.Fatalf("outdeg(1) = %d", g.OutDegree(g.Owner(1), 1))
		}
		if got := collectOut(g, 1)[[2]Vertex{1, 1}]; len(got) != 1 || got[0] != 9 {
			t.Fatalf("self-loop: %v", got)
		}
	}
}

func TestBuildSymmetrize(t *testing.T) {
	d := NewCyclicDist(4, 3)
	g := Build(d, testEdges(), Options{Symmetrize: true})
	if g.NumStoredEdges() != 14 {
		t.Fatalf("stored %d, want 14", g.NumStoredEdges())
	}
	// 1's adjacency now includes 0 (reverse of 0->1, twice), 2, and itself twice.
	deg := g.OutDegree(g.Owner(1), 1)
	if deg != 6 { // fwd: 1->2, 1->1; rev: 1->0 ×2, 1->1, 2->1 reversed = 1? wait
		// fwd copies from 1: (1,2),(1,1) = 2. rev copies to 1: rev of (0,1)w5,
		// (0,1)w6, (1,1) = 3 more, and rev of (1,2) lands at 2 not 1.
		// total = 2 + 3 = 5... recompute in the assertion below.
		_ = deg
	}
	want := 0
	for _, e := range testEdges() {
		if e.Src == 1 {
			want++
		}
		if e.Dst == 1 {
			want++
		}
	}
	if deg != want {
		t.Fatalf("outdeg(1) after symmetrize = %d, want %d", deg, want)
	}
}

func TestBuildBidirectional(t *testing.T) {
	for _, ranks := range []int{1, 3} {
		d := NewBlockDist(4, ranks)
		g := Build(d, testEdges(), Options{Bidirectional: true})
		// In-edges of 1: 0->1 (w5), 0->1 (w6), 1->1 (w9).
		r := g.Owner(1)
		var ws []int64
		g.ForInEdges(r, 1, func(e EdgeRef) {
			if e.Trg() != 1 {
				t.Fatalf("in-edge of 1 with trg %d", e.Trg())
			}
			if !e.In {
				t.Fatal("in-edge ref not marked In")
			}
			ws = append(ws, g.Weight(r, e))
		})
		sum := int64(0)
		for _, w := range ws {
			sum += w
		}
		if len(ws) != 3 || sum != 20 {
			t.Fatalf("in-edges of 1: weights %v", ws)
		}
		// Canonical refs round-trip: every in-edge's canon slot holds the
		// same weight.
		lg := g.Local(r)
		li := g.Dist().Local(1)
		for s := lg.InIndex[li]; s < lg.InIndex[li+1]; s++ {
			cr, cs := lg.InCanonRank[s], lg.InCanonSlot[s]
			if g.Local(int(cr)).OutW[cs] != lg.InW[s] {
				t.Fatalf("canon weight mismatch at in-slot %d", s)
			}
		}
	}
}

func TestForInEdgesWithoutBidirectionalPanics(t *testing.T) {
	g := Build(NewBlockDist(4, 1), testEdges(), Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.ForInEdges(0, 1, func(EdgeRef) {})
}

func TestRemoteAccessPanics(t *testing.T) {
	g := Build(NewBlockDist(4, 2), testEdges(), Options{})
	wrong := 1 - g.Owner(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on remote ForOutEdges")
		}
	}()
	g.ForOutEdges(wrong, 0, func(EdgeRef) {})
}

func TestEdgeRefLocality(t *testing.T) {
	g := Build(NewBlockDist(4, 2), testEdges(), Options{Bidirectional: true})
	for r := 0; r < 2; r++ {
		lg := g.Local(r)
		for li := 0; li < lg.NumLocal(); li++ {
			v := g.Dist().Global(r, li)
			g.ForOutEdges(r, v, func(e EdgeRef) {
				if e.GenVertex() != v || e.Src() != v {
					t.Fatalf("out-edge gen vertex %d != %d", e.GenVertex(), v)
				}
			})
			g.ForInEdges(r, v, func(e EdgeRef) {
				if e.GenVertex() != v || e.Trg() != v {
					t.Fatalf("in-edge gen vertex %d != %d", e.GenVertex(), v)
				}
			})
		}
	}
}

// TestBuildParallelEquivalent: the parallel builder produces a byte-for-byte
// identical layout to the sequential one, across distributions and options.
func TestBuildParallelEquivalent(t *testing.T) {
	edges := testEdges()
	for _, opts := range []Options{
		{},
		{Symmetrize: true},
		{Bidirectional: true},
		{Symmetrize: true, Bidirectional: true},
	} {
		for name, d := range distributions(4, 3) {
			a := Build(d, edges, opts)
			b := BuildParallel(d, edges, opts)
			if a.NumStoredEdges() != b.NumStoredEdges() {
				t.Fatalf("%s %+v: edge counts %d vs %d", name, opts, a.NumStoredEdges(), b.NumStoredEdges())
			}
			for r := 0; r < 3; r++ {
				la, lb := a.Local(r), b.Local(r)
				if len(la.OutIndex) != len(lb.OutIndex) {
					t.Fatalf("%s: index lengths differ", name)
				}
				for i := range la.OutIndex {
					if la.OutIndex[i] != lb.OutIndex[i] {
						t.Fatalf("%s %+v rank %d: OutIndex[%d] %d vs %d", name, opts, r, i, la.OutIndex[i], lb.OutIndex[i])
					}
				}
				for i := range la.OutDst {
					if la.OutDst[i] != lb.OutDst[i] || la.OutW[i] != lb.OutW[i] {
						t.Fatalf("%s %+v rank %d: slot %d differs", name, opts, r, i)
					}
				}
				for i := range la.InSrc {
					if la.InSrc[i] != lb.InSrc[i] || la.InW[i] != lb.InW[i] ||
						la.InCanonRank[i] != lb.InCanonRank[i] || la.InCanonSlot[i] != lb.InCanonSlot[i] {
						t.Fatalf("%s %+v rank %d: in-slot %d differs", name, opts, r, i)
					}
				}
			}
		}
	}
}

// Property: for any random edge list, the multiset of stored (src,dst,w)
// triples equals the input (directed build), regardless of distribution.
func TestBuildPreservesEdgesQuick(t *testing.T) {
	f := func(raw []uint32, ranksRaw uint8) bool {
		const n = 16
		ranks := int(ranksRaw)%4 + 1
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{
				Src: Vertex(raw[i] % n), Dst: Vertex(raw[i+1] % n),
				W: int64(raw[i]%100) + 1,
			})
		}
		for name, d := range distributions(n, ranks) {
			g := Build(d, edges, Options{})
			count := func(set map[[3]int64]int, add bool) {
				for r := 0; r < ranks; r++ {
					lg := g.Local(r)
					for li := 0; li < lg.NumLocal(); li++ {
						v := d.Global(r, li)
						g.ForOutEdges(r, v, func(e EdgeRef) {
							k := [3]int64{int64(e.Src()), int64(e.Trg()), g.Weight(r, e)}
							if add {
								set[k]++
							} else {
								set[k]--
							}
						})
					}
				}
			}
			set := map[[3]int64]int{}
			count(set, true)
			for _, e := range edges {
				set[[3]int64{int64(e.Src), int64(e.Dst), e.W}]--
			}
			for _, c := range set {
				if c != 0 {
					_ = name
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
