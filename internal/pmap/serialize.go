package pmap

import (
	"fmt"
	"sort"

	"declpat/internal/ckpt"
	"declpat/internal/distgraph"
)

// Serialized checkpoint support (am.SerializedCheckpointer): byte encodings
// of the snapshots produced by checkpoint.go, so a property-map shard can be
// written to disk and reloaded by a replacement process after a crash. Every
// encoding is deterministic — set members are sorted — so identical state
// yields identical checkpoint files, which is what makes the multi-process
// bit-identity comparisons in the chaos harness meaningful.

// EncodeSnapshot serializes a VertexWord snapshot
// (am.SerializedCheckpointer).
func (m *VertexWord) EncodeSnapshot(snap any) ([]byte, error) {
	s, ok := snap.([]int64)
	if !ok {
		return nil, fmt.Errorf("pmap: VertexWord snapshot has type %T, want []int64", snap)
	}
	var e ckpt.Enc
	e.I64Slice(s)
	return e.B, nil
}

// DecodeSnapshot parses a VertexWord snapshot (am.SerializedCheckpointer).
func (m *VertexWord) DecodeSnapshot(data []byte) (any, error) {
	d := ckpt.Dec{B: data}
	s := d.I64Slice()
	if err := d.Done(true); err != nil {
		return nil, fmt.Errorf("pmap: VertexWord snapshot: %w", err)
	}
	return s, nil
}

// EncodeSnapshot serializes a VertexSet snapshot: a u32 slot count, then per
// slot a presence byte and (when present) the sorted member list
// (am.SerializedCheckpointer). Nil and empty sets are distinct states — an
// empty set allocates on first touch — and both survive the round trip.
func (m *VertexSet) EncodeSnapshot(snap any) ([]byte, error) {
	sets, ok := snap.([]map[distgraph.Vertex]struct{})
	if !ok {
		return nil, fmt.Errorf("pmap: VertexSet snapshot has type %T, want []map[Vertex]struct{}", snap)
	}
	var e ckpt.Enc
	e.U32(uint32(len(sets)))
	for _, set := range sets {
		if set == nil {
			e.U8(0)
			continue
		}
		e.U8(1)
		members := make([]int64, 0, len(set))
		for v := range set {
			members = append(members, int64(v))
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		e.I64Slice(members)
	}
	return e.B, nil
}

// DecodeSnapshot parses a VertexSet snapshot (am.SerializedCheckpointer).
func (m *VertexSet) DecodeSnapshot(data []byte) (any, error) {
	d := ckpt.Dec{B: data}
	n := int(d.U32())
	if d.Err != nil {
		return nil, fmt.Errorf("pmap: VertexSet snapshot: %w", d.Err)
	}
	sets := make([]map[distgraph.Vertex]struct{}, n)
	for i := 0; i < n && d.Err == nil; i++ {
		if d.U8() == 0 {
			continue
		}
		members := d.I64Slice()
		set := make(map[distgraph.Vertex]struct{}, len(members))
		for _, v := range members {
			set[distgraph.Vertex(v)] = struct{}{}
		}
		sets[i] = set
	}
	if err := d.Done(true); err != nil {
		return nil, fmt.Errorf("pmap: VertexSet snapshot: %w", err)
	}
	return sets, nil
}

// EncodeSnapshot serializes an EdgeWord snapshot: the out-edge values plus a
// presence byte for the in-edge mirror slice (am.SerializedCheckpointer).
func (m *EdgeWord) EncodeSnapshot(snap any) ([]byte, error) {
	s, ok := snap.(edgeWordSnap)
	if !ok {
		return nil, fmt.Errorf("pmap: EdgeWord snapshot has type %T, want edgeWordSnap", snap)
	}
	var e ckpt.Enc
	e.I64Slice(s.out)
	if s.in == nil {
		e.U8(0)
	} else {
		e.U8(1)
		e.I64Slice(s.in)
	}
	return e.B, nil
}

// DecodeSnapshot parses an EdgeWord snapshot (am.SerializedCheckpointer).
func (m *EdgeWord) DecodeSnapshot(data []byte) (any, error) {
	d := ckpt.Dec{B: data}
	s := edgeWordSnap{out: d.I64Slice()}
	if d.U8() == 1 {
		s.in = d.I64Slice()
	}
	if err := d.Done(true); err != nil {
		return nil, fmt.Errorf("pmap: EdgeWord snapshot: %w", err)
	}
	return s, nil
}
