package pmap

import "declpat/internal/distgraph"

// Epoch-granular checkpoint/restart support (am.Checkpointer). Each map type
// snapshots one rank's shard by deep copy and restores by copying back, so a
// snapshot survives arbitrary mutation of the live shard and may be restored
// several times (repeated faults in one epoch). Both methods run at quiescent
// points — SnapshotRank at the epoch boundary, RestoreRank between recovery
// barriers — so no synchronization against handlers is needed.

// SnapshotRank deep-copies rank's shard (am.Checkpointer).
func (m *VertexWord) SnapshotRank(rank int) any {
	s := m.shards[rank]
	snap := make([]int64, len(s))
	copy(snap, s)
	return snap
}

// RestoreRank copies the snapshot back over rank's shard (am.Checkpointer).
func (m *VertexWord) RestoreRank(rank int, snap any) {
	copy(m.shards[rank], snap.([]int64))
}

// SnapshotRank deep-copies rank's shard, sets included (am.Checkpointer).
func (m *VertexSet) SnapshotRank(rank int) any {
	s := m.shards[rank]
	snap := make([]map[distgraph.Vertex]struct{}, len(s))
	for i, set := range s {
		if set == nil {
			continue
		}
		cp := make(map[distgraph.Vertex]struct{}, len(set))
		for u := range set {
			cp[u] = struct{}{}
		}
		snap[i] = cp
	}
	return snap
}

// RestoreRank rebuilds rank's shard from the snapshot (am.Checkpointer).
// The snapshot's sets are cloned again on restore, so one snapshot can seed
// several replays.
func (m *VertexSet) RestoreRank(rank int, snap any) {
	sets := snap.([]map[distgraph.Vertex]struct{})
	s := m.shards[rank]
	for i := range s {
		if sets[i] == nil {
			s[i] = nil
			continue
		}
		cp := make(map[distgraph.Vertex]struct{}, len(sets[i]))
		for u := range sets[i] {
			cp[u] = struct{}{}
		}
		s[i] = cp
	}
}

// edgeWordSnap is one rank's EdgeWord snapshot: canonical out-edge values
// plus the in-edge mirrors (mirrors are restored too, so a replay sees the
// same possibly-stale mirror state the original attempt saw).
type edgeWordSnap struct {
	out, in []int64
}

// SnapshotRank deep-copies rank's edge values (am.Checkpointer).
func (m *EdgeWord) SnapshotRank(rank int) any {
	snap := edgeWordSnap{out: make([]int64, len(m.out[rank]))}
	copy(snap.out, m.out[rank])
	if m.in[rank] != nil {
		snap.in = make([]int64, len(m.in[rank]))
		copy(snap.in, m.in[rank])
	}
	return snap
}

// RestoreRank copies the snapshot back over rank's edge values
// (am.Checkpointer).
func (m *EdgeWord) RestoreRank(rank int, snap any) {
	s := snap.(edgeWordSnap)
	copy(m.out[rank], s.out)
	if m.in[rank] != nil {
		copy(m.in[rank], s.in)
	}
}
