package pmap

import (
	"fmt"
	"sync/atomic"

	"declpat/internal/distgraph"
)

// VertexWord is a distributed vertex property map holding one int64 word per
// vertex. All accessors must run on the owning rank; they are safe for
// concurrent use by a rank's handler threads (atomic instructions, §IV-B).
type VertexWord struct {
	dist   distgraph.Distribution
	shards [][]int64
}

// NewVertexWord allocates a vertex word map over dist with every value init.
func NewVertexWord(dist distgraph.Distribution, init int64) *VertexWord {
	m := &VertexWord{dist: dist, shards: make([][]int64, dist.Ranks())}
	for r := range m.shards {
		s := make([]int64, dist.LocalCount(r))
		if init != 0 {
			for i := range s {
				s[i] = init
			}
		}
		m.shards[r] = s
	}
	return m
}

// Dist returns the map's distribution.
func (m *VertexWord) Dist() distgraph.Distribution { return m.dist }

func (m *VertexWord) slot(rank int, v distgraph.Vertex) *int64 {
	if m.dist.Owner(v) != rank {
		panic(fmt.Sprintf("pmap: access to vertex %d on rank %d but owner is %d", v, rank, m.dist.Owner(v)))
	}
	return &m.shards[rank][m.dist.Local(v)]
}

// Get atomically loads v's value on its owner rank.
func (m *VertexWord) Get(rank int, v distgraph.Vertex) int64 {
	return atomic.LoadInt64(m.slot(rank, v))
}

// Set atomically stores x as v's value on its owner rank.
func (m *VertexWord) Set(rank int, v distgraph.Vertex, x int64) {
	atomic.StoreInt64(m.slot(rank, v), x)
}

// SetIfChanged stores x and reports whether the stored value changed.
func (m *VertexWord) SetIfChanged(rank int, v distgraph.Vertex, x int64) bool {
	p := m.slot(rank, v)
	old := atomic.SwapInt64(p, x)
	return old != x
}

// Min atomically lowers v's value to x; reports whether it decreased.
func (m *VertexWord) Min(rank int, v distgraph.Vertex, x int64) bool {
	p := m.slot(rank, v)
	for {
		cur := atomic.LoadInt64(p)
		if x >= cur {
			return false
		}
		if atomic.CompareAndSwapInt64(p, cur, x) {
			return true
		}
	}
}

// Max atomically raises v's value to x; reports whether it increased.
func (m *VertexWord) Max(rank int, v distgraph.Vertex, x int64) bool {
	p := m.slot(rank, v)
	for {
		cur := atomic.LoadInt64(p)
		if x <= cur {
			return false
		}
		if atomic.CompareAndSwapInt64(p, cur, x) {
			return true
		}
	}
}

// Add atomically adds x to v's value and returns the new value.
func (m *VertexWord) Add(rank int, v distgraph.Vertex, x int64) int64 {
	return atomic.AddInt64(m.slot(rank, v), x)
}

// CAS atomically replaces old with new at v; reports success.
func (m *VertexWord) CAS(rank int, v distgraph.Vertex, old, new int64) bool {
	return atomic.CompareAndSwapInt64(m.slot(rank, v), old, new)
}

// GetRelaxed loads without atomicity; safe only at quiescent points
// (between epochs) or under an external lock from the map's LockMap.
func (m *VertexWord) GetRelaxed(rank int, v distgraph.Vertex) int64 {
	return *m.slot(rank, v)
}

// SetRelaxed stores without atomicity; same discipline as GetRelaxed.
func (m *VertexWord) SetRelaxed(rank int, v distgraph.Vertex, x int64) {
	*m.slot(rank, v) = x
}

// ForEachLocal visits every vertex owned by rank with its current value.
// Not synchronized; use at quiescent points.
func (m *VertexWord) ForEachLocal(rank int, fn func(v distgraph.Vertex, x int64)) {
	for li, x := range m.shards[rank] {
		fn(m.dist.Global(rank, li), x)
	}
}

// Gather copies the whole map into a dense global slice. In-process
// convenience for validation; a real deployment would make this a
// collective.
func (m *VertexWord) Gather() []int64 {
	out := make([]int64, m.dist.NumVertices())
	for r := range m.shards {
		for li, x := range m.shards[r] {
			out[m.dist.Global(r, li)] = x
		}
	}
	return out
}

// EdgeWord is a distributed edge property map holding one int64 per stored
// edge copy. Values are indexed by EdgeRef on the edge's locality rank.
// Out-edge slots are canonical; in-edge slots are read-only mirrors
// refreshed by MirrorIn (the duplicated edge payloads of the bidirectional
// storage model).
type EdgeWord struct {
	g   *distgraph.Graph
	out [][]int64
	in  [][]int64
}

// NewEdgeWord allocates an edge word map over g with every value init.
func NewEdgeWord(g *distgraph.Graph, init int64) *EdgeWord {
	R := g.Dist().Ranks()
	m := &EdgeWord{g: g, out: make([][]int64, R), in: make([][]int64, R)}
	for r := 0; r < R; r++ {
		lg := g.Local(r)
		o := make([]int64, lg.NumOutEdges())
		for i := range o {
			o[i] = init
		}
		m.out[r] = o
		if lg.InSrc != nil {
			in := make([]int64, lg.NumInEdges())
			for i := range in {
				in[i] = init
			}
			m.in[r] = in
		}
	}
	return m
}

// WeightMap returns an EdgeWord that aliases the graph's built-in weight
// payload (no copy). It is the paper's weight property map.
func WeightMap(g *distgraph.Graph) *EdgeWord {
	R := g.Dist().Ranks()
	m := &EdgeWord{g: g, out: make([][]int64, R), in: make([][]int64, R)}
	for r := 0; r < R; r++ {
		lg := g.Local(r)
		m.out[r] = lg.OutW
		m.in[r] = lg.InW
	}
	return m
}

// Get loads e's value on its locality rank.
func (m *EdgeWord) Get(rank int, e distgraph.EdgeRef) int64 {
	if e.In {
		return atomic.LoadInt64(&m.in[rank][e.Slot])
	}
	return atomic.LoadInt64(&m.out[rank][e.Slot])
}

// Set stores x as e's value. Only canonical (out-edge) refs may be written;
// in-edge mirrors become stale until MirrorIn runs.
func (m *EdgeWord) Set(rank int, e distgraph.EdgeRef, x int64) {
	if e.In {
		panic("pmap: EdgeWord.Set through an in-edge mirror; write the canonical out-edge copy")
	}
	atomic.StoreInt64(&m.out[rank][e.Slot], x)
}

// Min atomically lowers e's canonical value to x; reports decrease.
func (m *EdgeWord) Min(rank int, e distgraph.EdgeRef, x int64) bool {
	if e.In {
		panic("pmap: EdgeWord.Min through an in-edge mirror")
	}
	p := &m.out[rank][e.Slot]
	for {
		cur := atomic.LoadInt64(p)
		if x >= cur {
			return false
		}
		if atomic.CompareAndSwapInt64(p, cur, x) {
			return true
		}
	}
}

// MirrorIn refreshes every in-edge mirror from its canonical copy.
// Collective: call at a quiescent point on all ranks (any single caller may
// also refresh all ranks in-process).
func (m *EdgeWord) MirrorIn() {
	for r := range m.in {
		lg := m.g.Local(r)
		for i := range m.in[r] {
			m.in[r][i] = m.out[lg.InCanonRank[i]][lg.InCanonSlot[i]]
		}
	}
}
