package pmap

import (
	"sync"
	"testing"
	"testing/quick"

	"declpat/internal/distgraph"
)

func TestVertexWordBasics(t *testing.T) {
	d := distgraph.NewBlockDist(10, 3)
	m := NewVertexWord(d, 99)
	for v := distgraph.Vertex(0); v < 10; v++ {
		r := d.Owner(v)
		if got := m.Get(r, v); got != 99 {
			t.Fatalf("init value %d", got)
		}
		m.Set(r, v, int64(v)*2)
	}
	g := m.Gather()
	for v, x := range g {
		if x != int64(v)*2 {
			t.Fatalf("Gather[%d]=%d", v, x)
		}
	}
}

func TestVertexWordOwnerEnforced(t *testing.T) {
	d := distgraph.NewBlockDist(10, 2)
	m := NewVertexWord(d, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-owner access")
		}
	}()
	m.Get(1-d.Owner(3), 3)
}

func TestVertexWordMinMaxConcurrent(t *testing.T) {
	d := distgraph.NewBlockDist(1, 1)
	m := NewVertexWord(d, 1<<40)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	var changes [workers]int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				val := int64((i*workers + w) % 777)
				if m.Min(0, 0, val) {
					changes[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	if got := m.Get(0, 0); got != 0 {
		t.Fatalf("final min %d, want 0", got)
	}
	total := 0
	for _, c := range changes {
		total += c
	}
	if total < 1 {
		t.Fatal("no successful decrease recorded")
	}
}

func TestVertexWordAddCASSwap(t *testing.T) {
	d := distgraph.NewBlockDist(4, 2)
	m := NewVertexWord(d, 0)
	r := d.Owner(2)
	if m.Add(r, 2, 5) != 5 {
		t.Fatal("Add")
	}
	if !m.CAS(r, 2, 5, 7) || m.CAS(r, 2, 5, 9) {
		t.Fatal("CAS")
	}
	if !m.SetIfChanged(r, 2, 8) || m.SetIfChanged(r, 2, 8) {
		t.Fatal("SetIfChanged")
	}
	if m.Max(r, 2, 3) || !m.Max(r, 2, 100) {
		t.Fatal("Max")
	}
}

func TestEdgeWordWeightAlias(t *testing.T) {
	d := distgraph.NewBlockDist(4, 2)
	g := distgraph.Build(d, []distgraph.Edge{
		{Src: 0, Dst: 1, W: 5}, {Src: 1, Dst: 2, W: 7}, {Src: 2, Dst: 0, W: 3},
	}, distgraph.Options{Bidirectional: true})
	w := WeightMap(g)
	for r := 0; r < 2; r++ {
		lg := g.Local(r)
		for li := 0; li < lg.NumLocal(); li++ {
			v := d.Global(r, li)
			g.ForOutEdges(r, v, func(e distgraph.EdgeRef) {
				if w.Get(r, e) != g.Weight(r, e) {
					t.Fatalf("weight alias mismatch at %v", e)
				}
			})
			g.ForInEdges(r, v, func(e distgraph.EdgeRef) {
				if w.Get(r, e) != g.Weight(r, e) {
					t.Fatalf("in weight alias mismatch at %v", e)
				}
			})
		}
	}
}

func TestEdgeWordMirror(t *testing.T) {
	d := distgraph.NewBlockDist(4, 2)
	g := distgraph.Build(d, []distgraph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 2},
	}, distgraph.Options{Bidirectional: true})
	m := NewEdgeWord(g, -1)
	// Write canonical values = 10*src + trg, then mirror.
	for r := 0; r < 2; r++ {
		lg := g.Local(r)
		for li := 0; li < lg.NumLocal(); li++ {
			v := d.Global(r, li)
			_ = lg
			g.ForOutEdges(r, v, func(e distgraph.EdgeRef) {
				m.Set(r, e, int64(e.Src())*10+int64(e.Trg()))
			})
		}
	}
	m.MirrorIn()
	for r := 0; r < 2; r++ {
		lg := g.Local(r)
		for li := 0; li < lg.NumLocal(); li++ {
			v := d.Global(r, li)
			_ = lg
			g.ForInEdges(r, v, func(e distgraph.EdgeRef) {
				want := int64(e.Src())*10 + int64(e.Trg())
				if got := m.Get(r, e); got != want {
					t.Fatalf("mirror of (%d->%d) = %d, want %d", e.Src(), e.Trg(), got, want)
				}
			})
		}
	}
	// Writing through an in-edge must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic writing in-edge mirror")
			}
		}()
		var inRef distgraph.EdgeRef
		found := false
		g.ForInEdges(g.Owner(1), 1, func(e distgraph.EdgeRef) {
			if !found {
				inRef, found = e, true
			}
		})
		m.Set(g.Owner(1), inRef, 1)
	}()
}

func TestLockMapGranularities(t *testing.T) {
	d := distgraph.NewBlockDist(64, 2)
	for _, gran := range []int{1, 4, 64, 1000} {
		lm := NewLockMap(d, gran)
		m := NewVertex[int](d, lm)
		var wg sync.WaitGroup
		const workers, per = 8, 500
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					v := distgraph.Vertex(i % 64)
					m.Update(d.Owner(v), v, func(p *int) { *p++ })
				}
			}()
		}
		wg.Wait()
		total := 0
		for r := 0; r < 2; r++ {
			m.ForEachLocal(r, func(v distgraph.Vertex, x int) { total += x })
		}
		if total != workers*per {
			t.Fatalf("gran=%d: total=%d want %d", gran, total, workers*per)
		}
	}
}

func TestVertexSetInsertAtomic(t *testing.T) {
	d := distgraph.NewBlockDist(8, 2)
	lm := NewLockMap(d, 1)
	s := NewVertexSet(d, lm)
	var wg sync.WaitGroup
	var inserted [4]int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				u := distgraph.Vertex(i % 10)
				if s.Insert(d.Owner(3), 3, u) {
					inserted[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for _, c := range inserted {
		total += c
	}
	if total != 10 {
		t.Fatalf("successful inserts = %d, want 10 (set semantics)", total)
	}
	if got := s.Len(d.Owner(3), 3); got != 10 {
		t.Fatalf("Len=%d", got)
	}
	mem := s.Members(d.Owner(3), 3)
	for i, u := range mem {
		if u != distgraph.Vertex(i) {
			t.Fatalf("Members=%v", mem)
		}
	}
	if !s.Contains(d.Owner(3), 3, 5) || s.Contains(d.Owner(3), 3, 11) {
		t.Fatal("Contains")
	}
}

// Property: Min over any sequence equals the sequential minimum.
func TestVertexWordMinQuick(t *testing.T) {
	d := distgraph.NewBlockDist(1, 1)
	f := func(vals []int64) bool {
		m := NewVertexWord(d, int64(1)<<62)
		best := int64(1) << 62
		for _, v := range vals {
			m.Min(0, 0, v)
			if v < best {
				best = v
			}
		}
		return m.Get(0, 0) == best
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
