package pmap

import (
	"testing"

	"declpat/internal/distgraph"
)

func buildTypedTestGraph(t *testing.T) (*distgraph.Graph, distgraph.Distribution) {
	t.Helper()
	d := distgraph.NewBlockDist(6, 2)
	g := distgraph.Build(d, []distgraph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 2}, {Src: 4, Dst: 2, W: 3},
		{Src: 5, Dst: 0, W: 4}, {Src: 2, Dst: 5, W: 5},
	}, distgraph.Options{Bidirectional: true})
	return g, d
}

func TestTypedVertexMap(t *testing.T) {
	_, d := buildTypedTestGraph(t)
	type meta struct {
		Name  string
		Score float64
	}
	m := NewVertex[meta](d, nil)
	for v := distgraph.Vertex(0); v < 6; v++ {
		m.Set(d.Owner(v), v, meta{Name: "v", Score: float64(v) * 1.5})
	}
	for v := distgraph.Vertex(0); v < 6; v++ {
		got := m.Get(d.Owner(v), v)
		if got.Score != float64(v)*1.5 {
			t.Fatalf("score[%d] = %v", v, got)
		}
	}
	seen := 0
	for r := 0; r < 2; r++ {
		m.ForEachLocal(r, func(v distgraph.Vertex, x meta) { seen++ })
	}
	if seen != 6 {
		t.Fatalf("ForEachLocal visited %d", seen)
	}
}

func TestTypedVertexMapUpdateRequiresLocks(t *testing.T) {
	_, d := buildTypedTestGraph(t)
	m := NewVertex[int](d, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Update without LockMap")
		}
	}()
	m.Update(d.Owner(1), 1, func(p *int) { *p++ })
}

func TestTypedEdgeMap(t *testing.T) {
	g, d := buildTypedTestGraph(t)
	type label struct{ Tag string }
	m := NewEdge[label](g, true)
	// Write canonical values keyed by endpoints.
	for r := 0; r < 2; r++ {
		lg := g.Local(r)
		for li := 0; li < lg.NumLocal(); li++ {
			v := d.Global(r, li)
			g.ForOutEdges(r, v, func(e distgraph.EdgeRef) {
				m.Set(r, e, label{Tag: tagOf(e)})
			})
		}
	}
	m.MirrorIn()
	// Read back through in-edges: mirrors must match canonical tags.
	for r := 0; r < 2; r++ {
		lg := g.Local(r)
		for li := 0; li < lg.NumLocal(); li++ {
			v := d.Global(r, li)
			g.ForInEdges(r, v, func(e distgraph.EdgeRef) {
				if got := m.Get(r, e); got.Tag != tagOf(e) {
					t.Fatalf("in-edge (%d->%d): tag %q", e.Src(), e.Trg(), got.Tag)
				}
			})
		}
	}
	// Writing through an in-edge panics.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var in distgraph.EdgeRef
	r := g.Owner(2)
	g.ForInEdges(r, 2, func(e distgraph.EdgeRef) { in = e })
	m.Set(r, in, label{})
}

func tagOf(e distgraph.EdgeRef) string {
	return string(rune('a'+e.Src())) + string(rune('a'+e.Trg()))
}

func TestTypedEdgeMapWithoutMirrors(t *testing.T) {
	g, _ := buildTypedTestGraph(t)
	m := NewEdge[int](g, false)
	m.MirrorIn() // no-op
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reading in-edge without mirrors")
		}
	}()
	var in distgraph.EdgeRef
	r := g.Owner(2)
	g.ForInEdges(r, 2, func(e distgraph.EdgeRef) { in = e })
	m.Get(r, in)
}
