package pmap

import (
	"fmt"

	"declpat/internal/distgraph"
)

// Vertex is a distributed vertex property map with arbitrary value type T
// ("property maps associate vertices and edges to arbitrary user-defined
// data"). Access must happen on the owner rank. Plain Get/Set are not
// synchronized between a rank's handler threads; use Update with a LockMap
// for concurrent modification.
type Vertex[T any] struct {
	dist   distgraph.Distribution
	shards [][]T
	locks  *LockMap
}

// NewVertex allocates a typed vertex map over dist; every value starts as
// T's zero value. locks may be nil if the map is only accessed at quiescent
// points or from a single thread per rank.
func NewVertex[T any](dist distgraph.Distribution, locks *LockMap) *Vertex[T] {
	m := &Vertex[T]{dist: dist, shards: make([][]T, dist.Ranks()), locks: locks}
	for r := range m.shards {
		m.shards[r] = make([]T, dist.LocalCount(r))
	}
	return m
}

func (m *Vertex[T]) slot(rank int, v distgraph.Vertex) *T {
	if m.dist.Owner(v) != rank {
		panic(fmt.Sprintf("pmap: access to vertex %d on rank %d but owner is %d", v, rank, m.dist.Owner(v)))
	}
	return &m.shards[rank][m.dist.Local(v)]
}

// Get returns v's value on its owner rank (unsynchronized).
func (m *Vertex[T]) Get(rank int, v distgraph.Vertex) T { return *m.slot(rank, v) }

// Set stores x as v's value on its owner rank (unsynchronized).
func (m *Vertex[T]) Set(rank int, v distgraph.Vertex, x T) { *m.slot(rank, v) = x }

// Update runs fn on a pointer to v's value while holding the map's lock for
// v. Panics if the map was created without a LockMap.
func (m *Vertex[T]) Update(rank int, v distgraph.Vertex, fn func(*T)) {
	if m.locks == nil {
		panic("pmap: Vertex.Update without a LockMap")
	}
	m.locks.With(rank, v, func() { fn(m.slot(rank, v)) })
}

// ForEachLocal visits every vertex owned by rank. Not synchronized.
func (m *Vertex[T]) ForEachLocal(rank int, fn func(v distgraph.Vertex, x T)) {
	for li := range m.shards[rank] {
		fn(m.dist.Global(rank, li), m.shards[rank][li])
	}
}

// Edge is a distributed edge property map with arbitrary value type T,
// indexed by canonical (out-edge) refs on the edge's locality rank.
type Edge[T any] struct {
	g      *distgraph.Graph
	out    [][]T
	in     [][]T
	mirror bool
}

// NewEdge allocates a typed edge map over g. If mirrorIn is true and the
// graph is bidirectional, in-edge mirror slots are allocated; fill them with
// MirrorIn after initializing the canonical values.
func NewEdge[T any](g *distgraph.Graph, mirrorIn bool) *Edge[T] {
	R := g.Dist().Ranks()
	m := &Edge[T]{g: g, out: make([][]T, R), mirror: mirrorIn}
	if mirrorIn {
		m.in = make([][]T, R)
	}
	for r := 0; r < R; r++ {
		lg := g.Local(r)
		m.out[r] = make([]T, lg.NumOutEdges())
		if mirrorIn {
			m.in[r] = make([]T, lg.NumInEdges())
		}
	}
	return m
}

// Get returns e's value on its locality rank.
func (m *Edge[T]) Get(rank int, e distgraph.EdgeRef) T {
	if e.In {
		if !m.mirror {
			panic("pmap: Edge.Get through an in-edge on a map built without mirrors")
		}
		return m.in[rank][e.Slot]
	}
	return m.out[rank][e.Slot]
}

// Set stores x at e's canonical slot; panics on in-edge refs.
func (m *Edge[T]) Set(rank int, e distgraph.EdgeRef, x T) {
	if e.In {
		panic("pmap: Edge.Set through an in-edge mirror")
	}
	m.out[rank][e.Slot] = x
}

// MirrorIn refreshes in-edge mirrors from canonical slots. Collective; call
// at a quiescent point.
func (m *Edge[T]) MirrorIn() {
	if !m.mirror {
		return
	}
	for r := range m.in {
		lg := m.g.Local(r)
		for i := range m.in[r] {
			m.in[r][i] = m.out[lg.InCanonRank[i]][lg.InCanonSlot[i]]
		}
	}
}
