// Package pmap implements the paper's property maps (§III-B): associations
// from vertices or edges to values, stored distributed — each rank holds the
// values of the vertices and edges it owns, and all access happens at the
// owner ("reading from and writing to property maps must be done at the
// nodes where the values are located", §IV).
//
// Two families are provided:
//
//   - Word-valued maps (VertexWord, EdgeWord) storing int64 words with
//     atomic operations (load, store, min, add, CAS). These are what the
//     pattern engine operates on: word payloads keep messages fixed-size
//     and coalescible, and single-value conditions can be synchronized with
//     atomic instructions exactly as §IV-B describes.
//   - Generic typed maps (Vertex[T], Edge[T]) for arbitrary user data, and
//     VertexSet for set-valued properties with atomic insert (the paper's
//     preds[v].insert(u) modification form).
//
// The LockMap realizes §IV-B's lock map abstraction: when a condition
// accesses more than one value at a vertex, synchronization falls back from
// atomics to locking, parameterized by a locking scheme (a lock per vertex,
// or a lock per block of vertices, trading lock count against coarseness).
package pmap
