package pmap

import (
	"fmt"
	"sync"

	"declpat/internal/distgraph"
)

// LockMap is the paper's lock-map abstraction (§IV-B): per-vertex
// synchronization for conditions that touch more than one property value at
// a vertex, parameterized by a locking scheme. Granularity g means one lock
// guards a block of g consecutive local vertices: g=1 is a lock per vertex
// (finest), larger g trades lock memory for contention.
type LockMap struct {
	dist        distgraph.Distribution
	granularity int
	locks       [][]sync.Mutex
}

// NewLockMap creates a lock map over dist with the given granularity
// (vertices per lock; minimum 1).
func NewLockMap(dist distgraph.Distribution, granularity int) *LockMap {
	if granularity < 1 {
		granularity = 1
	}
	lm := &LockMap{dist: dist, granularity: granularity, locks: make([][]sync.Mutex, dist.Ranks())}
	for r := range lm.locks {
		n := (dist.LocalCount(r) + granularity - 1) / granularity
		if n == 0 {
			n = 1
		}
		lm.locks[r] = make([]sync.Mutex, n)
	}
	return lm
}

// Granularity returns the configured vertices-per-lock.
func (lm *LockMap) Granularity() int { return lm.granularity }

func (lm *LockMap) lock(rank int, v distgraph.Vertex) *sync.Mutex {
	if lm.dist.Owner(v) != rank {
		panic(fmt.Sprintf("pmap: LockMap access to vertex %d on rank %d but owner is %d", v, rank, lm.dist.Owner(v)))
	}
	return &lm.locks[rank][lm.dist.Local(v)/lm.granularity]
}

// Lock acquires the lock guarding v on its owner rank.
func (lm *LockMap) Lock(rank int, v distgraph.Vertex) { lm.lock(rank, v).Lock() }

// Unlock releases the lock guarding v.
func (lm *LockMap) Unlock(rank int, v distgraph.Vertex) { lm.lock(rank, v).Unlock() }

// With runs fn while holding v's lock.
func (lm *LockMap) With(rank int, v distgraph.Vertex, fn func()) {
	l := lm.lock(rank, v)
	l.Lock()
	defer l.Unlock()
	fn()
}
