package pmap

import (
	"fmt"
	"sort"

	"declpat/internal/distgraph"
)

// VertexSet is a distributed vertex property map whose values are sets of
// vertices, supporting the paper's container-modification form
// preds[v].insert(u). Insert is atomic with respect to the map's LockMap
// (the paper guarantees every modification is atomic, §III-C).
type VertexSet struct {
	dist   distgraph.Distribution
	shards [][]map[distgraph.Vertex]struct{}
	locks  *LockMap
}

// NewVertexSet allocates a set-valued vertex map over dist, synchronized by
// locks (required).
func NewVertexSet(dist distgraph.Distribution, locks *LockMap) *VertexSet {
	if locks == nil {
		panic("pmap: NewVertexSet requires a LockMap")
	}
	m := &VertexSet{dist: dist, shards: make([][]map[distgraph.Vertex]struct{}, dist.Ranks()), locks: locks}
	for r := range m.shards {
		m.shards[r] = make([]map[distgraph.Vertex]struct{}, dist.LocalCount(r))
	}
	return m
}

func (m *VertexSet) slot(rank int, v distgraph.Vertex) *map[distgraph.Vertex]struct{} {
	if m.dist.Owner(v) != rank {
		panic(fmt.Sprintf("pmap: access to vertex %d on rank %d but owner is %d", v, rank, m.dist.Owner(v)))
	}
	return &m.shards[rank][m.dist.Local(v)]
}

// Locks returns the lock map synchronizing this set.
func (m *VertexSet) Locks() *LockMap { return m.locks }

// Insert adds u to v's set; reports whether the set changed.
func (m *VertexSet) Insert(rank int, v, u distgraph.Vertex) bool {
	changed := false
	m.locks.With(rank, v, func() {
		changed = m.InsertLocked(rank, v, u)
	})
	return changed
}

// InsertLocked is Insert for callers that already hold v's lock from this
// set's LockMap (e.g. the pattern engine's merged evaluation, which locks
// the modified vertex around the whole condition).
func (m *VertexSet) InsertLocked(rank int, v, u distgraph.Vertex) bool {
	p := m.slot(rank, v)
	if *p == nil {
		*p = make(map[distgraph.Vertex]struct{}, 4)
	}
	if _, ok := (*p)[u]; ok {
		return false
	}
	(*p)[u] = struct{}{}
	return true
}

// Contains reports whether u is in v's set.
func (m *VertexSet) Contains(rank int, v, u distgraph.Vertex) bool {
	found := false
	m.locks.With(rank, v, func() {
		if s := *m.slot(rank, v); s != nil {
			_, found = s[u]
		}
	})
	return found
}

// Len returns the size of v's set.
func (m *VertexSet) Len(rank int, v distgraph.Vertex) int {
	n := 0
	m.locks.With(rank, v, func() {
		n = len(*m.slot(rank, v))
	})
	return n
}

// Members returns v's set as a sorted slice (a copy).
func (m *VertexSet) Members(rank int, v distgraph.Vertex) []distgraph.Vertex {
	var out []distgraph.Vertex
	m.locks.With(rank, v, func() {
		for u := range *m.slot(rank, v) {
			out = append(out, u)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
