package bfsgen

import (
	"os"
	"testing"

	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/seq"
)

func TestGeneratedSourceIsCurrent(t *testing.T) {
	want, err := pattern.GenerateGo(algorithms.BFSPattern(), pattern.DefaultPlanOptions(), "bfsgen")
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("bfsgen.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatal("committed bfsgen.go is stale; regenerate with cmd/codegen")
	}
}

func TestGeneratedBFSMatchesSequential(t *testing.T) {
	n, edges := gen.RMAT(9, 8, gen.Weights{}, 321)
	want := seq.BFS(n, edges, 0)
	u := am.NewUniverse(am.Config{Ranks: 4, ThreadsPerRank: 2})
	d := distgraph.NewBlockDist(n, 4)
	g := distgraph.Build(d, edges, distgraph.Options{})
	lvl := pmap.NewVertexWord(d, pattern.Inf)
	bfs := NewBfs(u, g, lvl)
	bfs.SetWork(func(r *am.Rank, v distgraph.Vertex) { bfs.InvokeAsync(r, v) })
	u.Run(func(r *am.Rank) {
		if g.Owner(0) == r.ID() {
			lvl.Set(r.ID(), 0, 0)
		}
		r.Barrier()
		r.Epoch(func(ep *am.Epoch) {
			if g.Owner(0) == r.ID() {
				bfs.Invoke(r, 0)
			}
		})
	})
	got := lvl.Gather()
	for v := range want {
		w := want[v]
		if w == seq.Inf {
			w = pattern.Inf
		}
		if got[v] != w {
			t.Fatalf("lvl[%d] = %d, want %d", v, got[v], w)
		}
	}
}
