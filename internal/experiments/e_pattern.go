package experiments

import (
	"strings"

	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/harness"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/strategy"
)

// threeLocPattern is a relax variant whose condition reads a third remote
// vertex: dist[trg] relaxed by dist[v] + weight[e] + pen[via[v]]. It
// separates the merged and unmerged plans in message count (E2), unlike the
// plain SSSP pattern where the target is the only remote read.
func threeLocPattern() *pattern.Pattern {
	p := pattern.New("SSSP3")
	dist := p.VertexProp("dist")
	pen := p.VertexProp("pen")
	via := p.VertexProp("via")
	weight := p.EdgeProp("weight")
	relax := p.Action("relax", pattern.OutEdges())
	d := pattern.Add(pattern.Add(dist.At(pattern.V()), weight.At(pattern.E())), pen.AtVal(via.At(pattern.V())))
	// The comparison is written target-first so the unmerged baseline
	// gathers dist[trg] before the penalty, evaluates at the penalty
	// vertex, and needs a third message back to trg — the §IV-A merge
	// saving. (Semantically identical to d < dist[trg].)
	relax.If(pattern.Gt(dist.At(pattern.Trg()), d)).Set(dist.At(pattern.Trg()), d)
	return p
}

// runThreeLoc executes the three-locality relax to a fixed point with the
// given plan options; pen is zero everywhere, so correct answers equal plain
// SSSP. Returns the universe (for stats) and distances.
func runThreeLoc(n int, edges []distgraph.Edge, popts pattern.PlanOptions) (*am.Universe, []int64) {
	u := am.New(4, am.WithThreads(2))
	benchTrack(u)
	d := distgraph.NewBlockDist(n, 4)
	g := distgraph.Build(d, edges, distgraph.Options{})
	lm := pmap.NewLockMap(d, 1)
	eng := pattern.NewEngine(u, g, lm, popts)
	dmap := pmap.NewVertexWord(d, pattern.Inf)
	penMap := pmap.NewVertexWord(d, 0)
	viaMap := pmap.NewVertexWord(d, 0)
	bound, err := eng.Bind(threeLocPattern(), pattern.Bindings{
		"dist": dmap, "pen": penMap, "via": viaMap, "weight": pmap.WeightMap(g),
	})
	if err != nil {
		panic(err)
	}
	relax := bound.Action("relax")
	fp := strategy.NewFixedPoint(relax)
	u.Run(func(r *am.Rank) {
		viaMap.ForEachLocal(r.ID(), func(v distgraph.Vertex, _ int64) {
			viaMap.Set(r.ID(), v, int64((uint32(v)*2654435761)%uint32(n)))
		})
		var seeds []distgraph.Vertex
		if g.Owner(0) == r.ID() {
			dmap.Set(r.ID(), 0, 0)
			seeds = []distgraph.Vertex{0}
		}
		r.Barrier()
		fp.Run(r, seeds)
	})
	return u, dmap.Gather()
}

// E2Merge reproduces the §IV-A merge optimization: static plan message
// counts for merged vs unmerged evaluation across the pattern library, plus
// a runtime comparison on the three-locality relax — the merged plan sends
// fewer messages and keeps the read-modify-write of the target consistent.
func E2Merge(sc Scale) []*harness.Table {
	plans := harness.NewTable("E2a: compiled plan per condition (merged vs unmerged)",
		"pattern/action", "cond", "merged-msgs", "merged-sync", "unmerged-msgs", "unmerged-sync")
	lib := []func() *pattern.Pattern{
		algorithms.SSSPPattern, algorithms.BFSPattern, algorithms.WidestPattern,
		algorithms.CCPattern, threeLocPattern,
	}
	for _, mk := range lib {
		merged := compilePlans(mk(), pattern.PlanOptions{Merge: true, Fold: true})
		unmerged := compilePlans(mk(), pattern.PlanOptions{Merge: false, Fold: true})
		for i := range merged {
			for ci := range merged[i].Conds {
				plans.Add(merged[i].Action, ci,
					merged[i].Conds[ci].Messages, merged[i].Conds[ci].Sync,
					unmerged[i].Conds[ci].Messages, unmerged[i].Conds[ci].Sync)
			}
		}
	}

	n, edges := workload(sc)
	rt := harness.NewTable("E2b: runtime, three-locality relax to fixed point",
		"mode", "messages", "handlers", "time", "wrong", "invariant-violations")
	for _, merged := range []bool{true, false} {
		popts := pattern.PlanOptions{Merge: merged, Fold: true}
		var u *am.Universe
		var got []int64
		d := harness.Time(func() { u, got = runThreeLoc(n, edges, popts) })
		name := "merged"
		if !merged {
			name = "unmerged"
		}
		rt.Add(row([]any{name}, statCells(u, "messages", "handlers"), d,
			checkSSSP(got, n, edges, 0), invariantViolations(got, edges))...)
	}
	return []*harness.Table{plans, rt}
}

func compilePlans(p *pattern.Pattern, popts pattern.PlanOptions) []pattern.PlanInfo {
	u := am.New(1)
	benchTrack(u)
	d := distgraph.NewBlockDist(2, 1)
	g := distgraph.Build(d, []distgraph.Edge{{Src: 0, Dst: 1, W: 1}}, distgraph.Options{})
	lm := pmap.NewLockMap(d, 1)
	eng := pattern.NewEngine(u, g, lm, popts)
	binds := pattern.Bindings{}
	for _, pr := range p.Props {
		switch pr.Kind {
		case pattern.VertexWordProp:
			binds[pr.Name] = pmap.NewVertexWord(d, 0)
		case pattern.EdgeWordProp:
			binds[pr.Name] = pmap.WeightMap(g)
		case pattern.VertexSetProp:
			binds[pr.Name] = pmap.NewVertexSet(d, lm)
		}
	}
	bound, err := eng.Bind(p, binds)
	if err != nil {
		panic(err)
	}
	var out []pattern.PlanInfo
	for _, a := range p.Actions {
		out = append(out, bound.Action(a.Name).PlanInfo())
	}
	return out
}

// fig5Pattern reconstructs the Fig. 5 gather example: a dependency tree with
// a short branch and a long pointer chain ending at the evaluation site.
func fig5Pattern() *pattern.Pattern {
	p := pattern.New("Fig5")
	b := p.VertexProp("b")
	bval := p.VertexProp("bval")
	names := []string{"c1", "c2", "c3", "c4", "c5", "c6"}
	chain := make([]*pattern.Prop, len(names))
	for i, nm := range names {
		chain[i] = p.VertexProp(nm)
	}
	out := p.VertexProp("out")
	a := p.Action("gather", pattern.None())
	x := chain[0].At(pattern.V())
	for i := 1; i < len(chain); i++ {
		x = chain[i].AtVal(x)
	}
	bv := bval.AtVal(b.At(pattern.V()))
	a.If(pattern.Gt(pattern.Add(bv, x), pattern.C(0))).Set(out.AtVal(x), pattern.Add(bv, x))
	return p
}

// E4Planner reproduces Fig. 5's message-count comparison: the naive
// depth-first gather order with backtracking hops vs direct sibling jumps.
func E4Planner(Scale) []*harness.Table {
	t := harness.NewTable("E4: gather planner on the Fig. 5 dependency tree",
		"mode", "messages", "route")
	for _, naive := range []bool{true, false} {
		popts := pattern.PlanOptions{Merge: true, Fold: true, NaiveDFS: naive}
		pi := compilePlans(fig5Pattern(), popts)[0]
		name := "direct (optimized)"
		if naive {
			name = "naive DFS (backtracking)"
		}
		t.Add(name, pi.Conds[0].Messages, shortRoute(pi.Conds[0].Route))
	}
	return []*harness.Table{t}
}

func shortRoute(route []string) string {
	short := make([]string, len(route))
	for i, s := range route {
		// Compress val(c3[val(c2[...])]) chains for readability.
		if idx := strings.Index(s, "["); idx > 4 && strings.HasPrefix(s, "val(") {
			short[i] = s[4:idx]
		} else {
			short[i] = s
		}
	}
	return strings.Join(short, "->")
}

// E10Folding reproduces Fig. 6's payload optimization: the live payload
// carried into the eval hop with and without local-subexpression folding,
// and the effective wire bytes a slot-compacting serializer would ship.
func E10Folding(sc Scale) []*harness.Table {
	t := harness.NewTable("E10: subexpression folding (payload words into the eval hop)",
		"pattern/action", "folded-words", "raw-words", "effective-bytes/msg folded", "raw")
	lib := []func() *pattern.Pattern{algorithms.SSSPPattern, algorithms.WidestPattern, threeLocPattern}
	const header = 16 // envelope share per message
	for _, mk := range lib {
		folded := compilePlans(mk(), pattern.PlanOptions{Merge: true, Fold: true})
		raw := compilePlans(mk(), pattern.PlanOptions{Merge: true, Fold: false})
		for i := range folded {
			fw := folded[i].Conds[0].PayloadWords
			rw := raw[i].Conds[0].PayloadWords
			t.Add(folded[i].Action, fw, rw, header+8*fw+8, header+8*rw+8)
		}
	}
	return []*harness.Table{t}
}

// E11PointerJump measures the §II-B pointer-jumping action: cc_jump is a
// two-hop gather (plan), and repeated `once` rounds collapse pointer chains
// in logarithmically many rounds.
func E11PointerJump(Scale) []*harness.Table {
	plan := harness.NewTable("E11a: cc_jump compiled plan", "metric", "value")
	pi := compilePlans(algorithms.CCPattern(), pattern.DefaultPlanOptions())
	for _, a := range pi {
		if a.Action == "cc_jump" {
			plan.Add("messages per application", a.Conds[0].Messages)
			plan.Add("route", shortRoute(a.Conds[0].Route))
			plan.Add("sync", a.Conds[0].Sync)
		}
	}

	rounds := harness.NewTable("E11b: chain collapse via once(cc_jump)",
		"chain-length", "once-rounds", "messages")
	for _, L := range []int{4, 16, 64, 256} {
		u := am.New(4, am.WithThreads(1))
		benchTrack(u)
		d := distgraph.NewBlockDist(L, 4)
		g := distgraph.Build(d, gen.Path(L, gen.Weights{}, 0), distgraph.Options{})
		lm := pmap.NewLockMap(d, 1)
		eng := pattern.NewEngine(u, g, lm, pattern.DefaultPlanOptions())
		p := pattern.New("Jump")
		chg := p.VertexProp("chg")
		a := p.Action("cc_jump", pattern.None())
		cv := chg.At(pattern.V())
		cc := chg.AtVal(cv)
		a.If(pattern.Lt(cc, cv)).Set(chg.At(pattern.V()), cc)
		cmap := pmap.NewVertexWord(d, 0)
		bound, err := eng.Bind(p, pattern.Bindings{"chg": cmap})
		if err != nil {
			panic(err)
		}
		jump := bound.Action("cc_jump")
		nRounds := 0
		u.Run(func(r *am.Rank) {
			cmap.ForEachLocal(r.ID(), func(v distgraph.Vertex, _ int64) {
				if v == 0 {
					cmap.Set(r.ID(), v, 0)
				} else {
					cmap.Set(r.ID(), v, int64(v)-1)
				}
			})
			r.Barrier()
			locals := algorithms.LocalVertices(g, r)
			n := 0
			for strategy.Once(r, jump, locals) {
				n++
			}
			if r.ID() == 0 {
				nRounds = n
			}
		})
		for v, c := range cmap.Gather() {
			if c != 0 {
				panic("pointer jumping did not collapse chain at " + itoa(v))
			}
		}
		rounds.Add(row([]any{L, nRounds}, statCells(u, "messages"))...)
	}
	return []*harness.Table{plan, rounds}
}
