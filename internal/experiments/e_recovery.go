package experiments

import (
	"fmt"

	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/harness"
	"declpat/internal/pattern"
)

// E18Recovery measures the cost of epoch-granular checkpoint/restart as the
// injected crash rate rises, on both termination detectors. Per detector, the
// first row is the trusted transport (no fault plan, no checkpoints); the
// crashes=0 row enables recovery with no faults, i.e. pure checkpoint
// overhead at every epoch boundary; the remaining rows kill ranks mid-epoch
// (after a handled-message threshold) in successive epochs, forcing that many
// rollback/replay cycles. Δ-stepping SSSP is the workload because its bucket
// loop has the richest epoch structure — every crash lands in a different
// bucket epoch. "wrong" must stay 0 in every row: recovery replays must
// reproduce the fault-free answer exactly.
func E18Recovery(sc Scale) []*harness.Table {
	n, edges := workload(sc)
	const delta = 30
	t := harness.NewTable("E18: checkpoint/recovery overhead vs crash rate (Δ-stepping SSSP, 4 ranks x 2 threads)",
		"detector", "injected", "crashes", "aborts", "recoveries", "checkpoints", "messages", "envelopes", "time", "wrong")
	// Crash schedule pool: one mid-epoch crash per bucket epoch, rotating
	// over the non-zero ranks. Row k injects the first k of these.
	pool := []am.Crash{
		{Rank: 1, Epoch: 0, AfterHandled: 5},
		{Rank: 2, Epoch: 1, AfterHandled: 5},
		{Rank: 3, Epoch: 2, AfterHandled: 5},
		{Rank: 1, Epoch: 3, AfterHandled: 5},
	}
	for _, det := range []am.DetectorKind{am.DetectorAtomic, am.DetectorFourCounter} {
		run := func(injected int, plan *am.FaultPlan, recovery bool) {
			e := newEnv(am.Config{
				Ranks: 4, ThreadsPerRank: 2, CoalesceSize: 64, Detector: det,
				FaultPlan: plan, Recovery: recovery,
			}, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
			s := algorithms.NewSSSP(e.eng)
			s.UseDelta(e.u, delta)
			var err error
			d := harness.Time(func() {
				err = e.u.Run(func(r *am.Rank) { s.Run(r, 0) })
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: E18 run failed: %v", err))
			}
			label := "-"
			if plan != nil {
				label = itoa(injected)
			}
			t.Add(row([]any{det, label},
				statCells(e.u, "crashes", "aborts", "recoveries", "checkpoints",
					"messages", "envelopes"),
				d, checkSSSP(s.Dist.Gather(), n, edges, 0))...)
		}
		run(0, nil, false)
		for k := 0; k <= len(pool); k++ {
			plan := &am.FaultPlan{
				Seed:    harness.DeriveSeed(sc.Seed, fmt.Sprintf("e18/%s/crashes=%d", det, k)),
				Crashes: append([]am.Crash(nil), pool[:k]...),
			}
			run(k, plan, true)
		}
	}
	return []*harness.Table{t}
}
