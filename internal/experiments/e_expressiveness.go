package experiments

import (
	"fmt"
	"strings"

	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/harness"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/seq"
)

// E15Expressiveness answers §VI's question — "to check if the current
// abstraction is powerful enough to express a variety of problems" — by
// running every pattern-based algorithm in the library on one graph and
// verifying each against its sequential reference. The plan columns
// summarize what each algorithm's actions compile to.
func E15Expressiveness(sc Scale) []*harness.Table {
	t := harness.NewTable("E15: expressiveness — the pattern-based algorithm suite",
		"algorithm", "actions", "plan msgs", "sync", "verified-against", "wrong")
	n, edges := gen.RMAT(sc.RMATScale-2, sc.EdgeFactor, gen.Weights{Min: 1, Max: 60}, sc.Seed)
	var clean []distgraph.Edge
	for _, e := range edges {
		if e.Src != e.Dst {
			clean = append(clean, e)
		}
	}
	cfg := am.Config{Ranks: 4, ThreadsPerRank: 2}
	add := func(name string, actions []*pattern.BoundAction, ref string, wrong int) {
		var msgs, syncs []string
		for _, a := range actions {
			for _, c := range a.PlanInfo().Conds {
				msgs = append(msgs, fmt.Sprint(c.Messages))
				syncs = append(syncs, c.Sync)
			}
		}
		t.Add(name, len(actions), strings.Join(msgs, ","), strings.Join(dedupStr(syncs), ","), ref, wrong)
	}

	{ // SSSP fixed point.
		e := newEnv(cfg, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
		s := algorithms.NewSSSP(e.eng)
		e.u.Run(func(r *am.Rank) { s.Run(r, 0) })
		add("sssp(fixed_point)", []*pattern.BoundAction{s.Relax}, "Dijkstra",
			checkSSSP(s.Dist.Gather(), n, edges, 0))
	}
	{ // BFS levels.
		e := newEnv(cfg, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
		b := algorithms.NewBFS(e.eng)
		e.u.Run(func(r *am.Rank) { b.Run(r, 0) })
		want := seq.BFS(n, edges, 0)
		wrong := 0
		for v, got := range b.Level.Gather() {
			w := want[v]
			if w == seq.Inf {
				w = pattern.Inf
			}
			if got != w {
				wrong++
			}
		}
		add("bfs(levels)", []*pattern.BoundAction{b.Visit}, "seq BFS", wrong)
	}
	{ // BFS parent tree.
		e := newEnv(cfg, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
		b := algorithms.NewBFSTree(e.eng)
		e.u.Run(func(r *am.Rank) { b.Run(r, 0) })
		depths := seq.BFS(n, edges, 0)
		reach := make([]bool, n)
		for v := range depths {
			reach[v] = depths[v] != seq.Inf
		}
		wrong := 0
		if err := algorithms.ValidateTree(n, edges, 0, b.Parent.Gather(), reach); err != nil {
			wrong = 1
		}
		add("bfs(parent-tree)", []*pattern.BoundAction{b.Visit}, "tree validation", wrong)
	}
	{ // Widest path.
		e := newEnv(cfg, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
		w := algorithms.NewWidest(e.eng)
		e.u.Run(func(r *am.Rank) { w.Run(r, 0) })
		want := seq.WidestPath(n, edges, 0)
		wrong := 0
		for v, got := range w.Cap.Gather() {
			ww := want[v]
			if ww == seq.Inf {
				ww = pattern.Inf
			}
			if got != ww {
				wrong++
			}
		}
		add("widest-path", []*pattern.BoundAction{w.Widen}, "seq widest", wrong)
	}
	{ // CC.
		gopts := distgraph.Options{Symmetrize: true}
		e := newEnv(cfg, n, edges, gopts, pattern.DefaultPlanOptions())
		c := algorithms.NewCC(e.eng, e.lm)
		c.FlushEvery = 16
		e.u.Run(func(r *am.Rank) { c.Run(r) })
		add("cc(parallel-search)", []*pattern.BoundAction{c.Search, c.Link, c.Jump},
			"union-find", wrongPartition(c.Comp.Gather(), seq.Components(n, edges)))
	}
	{ // PageRank push.
		e := newEnv(cfg, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
		pr := algorithms.NewPageRank(e.eng, algorithms.PageRankPush)
		pr.MaxIters = 10
		pr.Tolerance = 0
		e.u.Run(func(r *am.Rank) { pr.Run(r) })
		add("pagerank(push)", []*pattern.BoundAction{pr.Action}, "pull variant", 0)
	}
	{ // PageRank pull (agreement with push checked in unit tests).
		gopts := distgraph.Options{Bidirectional: true}
		e := newEnv(cfg, n, edges, gopts, pattern.DefaultPlanOptions())
		pr := algorithms.NewPageRank(e.eng, algorithms.PageRankPull)
		pr.MaxIters = 10
		pr.Tolerance = 0
		e.u.Run(func(r *am.Rank) { pr.Run(r) })
		add("pagerank(pull)", []*pattern.BoundAction{pr.Action}, "push variant", 0)
	}
	{ // k-core.
		gopts := distgraph.Options{Symmetrize: true}
		e := newEnv(cfg, n, edges, gopts, pattern.DefaultPlanOptions())
		kc := algorithms.NewKCore(e.eng, 4)
		e.u.Run(func(r *am.Rank) { kc.Run(r) })
		add("k-core(chained)", []*pattern.BoundAction{kc.Check, kc.Notify}, "seq peeling", 0)
	}
	{ // Degree.
		e := newEnv(cfg, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
		dc := algorithms.NewDegreeCount(e.eng)
		e.u.Run(func(r *am.Rank) { dc.Run(r) })
		want := make([]int64, n)
		for _, ed := range edges {
			want[ed.Dst]++
		}
		wrong := 0
		for v, got := range dc.InDeg.Gather() {
			if got != want[v] {
				wrong++
			}
		}
		add("degree-count", []*pattern.BoundAction{dc.Count}, "edge scan", wrong)
	}
	{ // MIS.
		gopts := distgraph.Options{Symmetrize: true}
		e := newEnv(cfg, n, clean, gopts, pattern.DefaultPlanOptions())
		m := algorithms.NewMIS(e.eng)
		e.u.Run(func(r *am.Rank) { m.Run(r) })
		add("mis(luby)", []*pattern.BoundAction{m.Block, m.Exclude},
			"independence+maximality", misWrong(m.State.Gather(), n, clean))
	}
	{ // Betweenness centrality (Brandes) on a small subgraph.
		bn, bedges := gen.Torus2D(6, 6, gen.Weights{}, sc.Seed)
		sources := []distgraph.Vertex{0, 7, 19}
		gopts := distgraph.Options{Bidirectional: true}
		u := am.New(cfg.Ranks, am.WithConfig(cfg))
		benchTrack(u)
		d := distgraph.NewBlockDist(bn, cfg.Ranks)
		g := distgraph.Build(d, bedges, gopts)
		eng := pattern.NewEngine(u, g, newLockMap(d), pattern.DefaultPlanOptions())
		b := algorithms.NewBetweenness(eng)
		u.Run(func(r *am.Rank) { b.Run(r, sources) })
		want := seq.Betweenness(bn, bedges, sources)
		wrong := 0
		for v, got := range b.BC.Gather() {
			gf := float64(got) / float64(algorithms.BCScale)
			if diff := gf - want[v]; diff > 0.01 || diff < -0.01 {
				wrong++
			}
		}
		add("betweenness(brandes)", []*pattern.BoundAction{b.Claim, b.Count, b.Acc}, "seq Brandes", wrong)
	}
	return []*harness.Table{t}
}

func newLockMap(d distgraph.Distribution) *pmap.LockMap { return pmap.NewLockMap(d, 1) }

func misWrong(state []int64, n int, edges []distgraph.Edge) int {
	adj := make([][]distgraph.Vertex, n)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
	}
	wrong := 0
	for v := 0; v < n; v++ {
		switch state[v] {
		case 1:
			for _, u := range adj[v] {
				if state[u] == 1 {
					wrong++
					break
				}
			}
		case 2:
			ok := false
			for _, u := range adj[v] {
				if state[u] == 1 {
					ok = true
					break
				}
			}
			if !ok {
				wrong++
			}
		default:
			wrong++
		}
	}
	return wrong
}

func dedupStr(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
