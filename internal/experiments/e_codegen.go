package experiments

import (
	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/harness"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/ssspgen"
)

// E14Codegen completes the abstraction-cost story of E9 with the paper's §VI
// future work realized: the same SSSP run three ways — interpretive pattern
// engine, translator-generated code, and hand-written messaging. Generated
// code should close (most of) the gap to hand-written while being derived
// mechanically from the declarative pattern.
func E14Codegen(sc Scale) []*harness.Table {
	n, edges := workload(sc)
	t := harness.NewTable("E14: pattern translator (generated code) vs engine vs hand-written",
		"impl", "messages", "handlers", "time", "wrong")
	cfg := am.Config{Ranks: 4, ThreadsPerRank: 2}

	// Interpretive engine.
	{
		e := newEnv(cfg, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
		s := algorithms.NewSSSP(e.eng)
		d := harness.Time(func() { e.u.Run(func(r *am.Rank) { s.Run(r, 0) }) })
		t.Add(row([]any{"engine (interpretive)"}, statCells(e.u, "messages", "handlers"), d,
			checkSSSP(s.Dist.Gather(), n, edges, 0))...)
	}
	// Translator-generated.
	{
		u := am.New(cfg.Ranks, am.WithConfig(cfg))
		benchTrack(u)
		d := distgraph.NewBlockDist(n, cfg.Ranks)
		g := distgraph.Build(d, edges, defaultGOpts())
		dist := pmap.NewVertexWord(d, pattern.Inf)
		relax := ssspgen.NewRelax(u, g, dist, pmap.WeightMap(g))
		relax.SetWork(func(r *am.Rank, v distgraph.Vertex) { relax.InvokeAsync(r, v) })
		dur := harness.Time(func() {
			u.Run(func(r *am.Rank) {
				if g.Owner(0) == r.ID() {
					dist.Set(r.ID(), 0, 0)
				}
				r.Barrier()
				r.Epoch(func(ep *am.Epoch) {
					if g.Owner(0) == r.ID() {
						relax.Invoke(r, 0)
					}
				})
			})
		})
		t.Add(row([]any{"generated (translator)"}, statCells(u, "messages", "handlers"), dur,
			checkSSSP(dist.Gather(), n, edges, 0))...)
	}
	// Hand-written.
	{
		u := am.New(cfg.Ranks, am.WithConfig(cfg))
		benchTrack(u)
		g := buildGraph(u, n, edges, defaultGOpts())
		h := algorithms.NewHandSSSP(u, g)
		dur := harness.Time(func() { u.Run(func(r *am.Rank) { h.Run(r, 0) }) })
		t.Add(row([]any{"hand-written"}, statCells(u, "messages", "handlers"), dur,
			checkSSSP(h.Dist.Gather(), n, edges, 0))...)
	}
	return []*harness.Table{t}
}
