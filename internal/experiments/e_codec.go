package experiments

import (
	"fmt"
	"runtime"
	"time"

	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/harness"
	"declpat/internal/pattern"
)

// CodecRecord is one E20 measurement: a (algorithm, detector, codec) cell
// with the substrate's wire-byte accounting and a hand-rolled allocation
// delta (runtime.ReadMemStats around the run — same counter `-benchmem`
// reads, without dragging the testing package into the suite binary).
type CodecRecord struct {
	Algo       string  `json:"algo"`
	Detector   string  `json:"detector"`
	Codec      string  `json:"codec"`
	Msgs       int64   `json:"msgs"`
	ModelBytes int64   `json:"model_bytes"` // accounted size x count (codec-independent)
	WireBytes  int64   `json:"wire_bytes"`  // true encoded bytes (0 for reference delivery)
	BytesPer   float64 `json:"wire_bytes_per_msg"`
	Allocs     uint64  `json:"allocs"`
	AllocsPer  float64 `json:"allocs_per_msg"`
	AllocBytes uint64  `json:"alloc_bytes"`
	WallNs     int64   `json:"wall_ns"`
	Wrong      int     `json:"wrong"`
}

// e20Detectors names the two termination detectors the matrix crosses.
var e20Detectors = []struct {
	name string
	kind am.DetectorKind
}{
	{"atomic", am.DetectorAtomic},
	{"4ctr", am.DetectorFourCounter},
}

// e20Codecs: "reference" ships batches in memory over the reliable protocol
// (the pre-codec behaviour), "gob" is the registered fallback, "fixed" the
// zero-reflection word-schema codec.
var e20Codecs = []string{"reference", "gob", "fixed"}

// E20CodecRecords runs the full BFS/SSSP/CC x detector x codec matrix and
// returns the measurements. Results of every codec are compared against the
// same algorithm+detector's reference run; Wrong counts differing vertices
// (must be 0 — bit-identical delivery is the codec contract).
func E20CodecRecords(sc Scale) []CodecRecord {
	n, edges := workload(sc)
	var recs []CodecRecord
	for _, algo := range []string{"bfs", "sssp", "cc"} {
		for _, det := range e20Detectors {
			var ref []int64
			for _, codec := range e20Codecs {
				rec, got := e20Run(sc, algo, det.name, det.kind, codec, n, edges)
				if codec == "reference" {
					ref = got
				}
				for v := range got {
					if got[v] != ref[v] {
						rec.Wrong++
					}
				}
				recs = append(recs, rec)
			}
		}
	}
	return recs
}

func e20Run(sc Scale, algo, detName string, det am.DetectorKind, codec string,
	n int, edges []distgraph.Edge) (CodecRecord, []int64) {
	gopts := defaultGOpts()
	if algo == "cc" {
		gopts.Symmetrize = true
	}
	e := newEnv(am.Config{Ranks: 4, ThreadsPerRank: 2, CoalesceSize: 64, Detector: det,
		FaultPlan: &am.FaultPlan{Seed: harness.DeriveSeed(sc.Seed, "e20/"+algo+"/"+detName)}},
		n, edges, gopts, pattern.DefaultPlanOptions())
	switch codec {
	case "gob":
		e.eng.MsgType().WithGobTransport()
	case "fixed":
		if got := e.eng.MsgType().WithWire().CodecName(); got != "fixed" {
			panic("E20: pattern message lost its fixed layout: codec " + got)
		}
	}
	// Outputs must be schedule-independent so codecs can be compared
	// bit-for-bit: BFS levels (not raced parent claims), SSSP distances,
	// and CC's partition canonicalized to smallest-member labels.
	var body func(r *am.Rank)
	var gather func() []int64
	switch algo {
	case "bfs":
		b := algorithms.NewBFS(e.eng)
		body = func(r *am.Rank) { b.Run(r, 0) }
		gather = b.Level.Gather
	case "sssp":
		s := algorithms.NewSSSP(e.eng)
		body = func(r *am.Rank) { s.Run(r, 0) }
		gather = s.Dist.Gather
	case "cc":
		c := algorithms.NewCC(e.eng, e.lm)
		body = func(r *am.Rank) { c.Run(r) }
		gather = func() []int64 { return canonicalize(c.Comp.Gather()) }
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	d := harness.Time(func() { e.u.Run(body) })
	runtime.ReadMemStats(&m1)
	s := e.u.Stats.Snapshot()
	rec := CodecRecord{
		Algo: algo, Detector: detName, Codec: codec,
		Msgs: s.MsgsSent, ModelBytes: s.BytesSent, WireBytes: s.WireBytes,
		Allocs:     m1.Mallocs - m0.Mallocs,
		AllocBytes: m1.TotalAlloc - m0.TotalAlloc,
		WallNs:     d.Nanoseconds(),
	}
	if rec.Msgs > 0 {
		rec.BytesPer = float64(rec.WireBytes) / float64(rec.Msgs)
		rec.AllocsPer = float64(rec.Allocs) / float64(rec.Msgs)
	}
	return rec, gather()
}

// canonicalize relabels a component vector so each class is named by its
// smallest member vertex — CC's raw root labels depend on which searches
// won the claiming races, but the induced partition is deterministic.
func canonicalize(comp []int64) []int64 {
	smallest := map[int64]int64{}
	for v, c := range comp {
		if s, ok := smallest[c]; !ok || int64(v) < s {
			smallest[c] = int64(v)
		}
	}
	out := make([]int64, len(comp))
	for v, c := range comp {
		out[v] = smallest[c]
	}
	return out
}

// E20Codec renders the record matrix as the suite table. The headline
// claims: fixed vs gob shows a >=2x reduction in allocations per message
// and a smaller wire encoding, with "wrong" 0 everywhere.
func E20Codec(sc Scale) []*harness.Table {
	t := harness.NewTable("E20: wire codec — bytes & allocations (BFS/SSSP/CC, 4 ranks x 2 threads, reliable transport)",
		"algorithm", "detector", "codec", "messages", "wire-bytes", "wire-B/msg", "allocs", "allocs/msg", "time", "wrong")
	for _, r := range E20CodecRecords(sc) {
		wb, wbp := "-", "-"
		if r.Codec != "reference" {
			wb, wbp = fmt.Sprint(r.WireBytes), fmt.Sprintf("%.1f", r.BytesPer)
		}
		t.Add(r.Algo, r.Detector, r.Codec, r.Msgs, wb, wbp, r.Allocs,
			fmt.Sprintf("%.2f", r.AllocsPer), time.Duration(r.WallNs).Round(time.Millisecond), r.Wrong)
	}
	return []*harness.Table{t}
}
