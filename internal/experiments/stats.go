package experiments

import "declpat/internal/am"

// statColumns maps the substrate column names used across the suite's tables
// to counter-snapshot fields, so a column name means the same counter in
// every table and a counter rename breaks loudly in exactly one place.
// ("accepted" is E6's name for post-reduction sends; same counter as
// "messages".)
var statColumns = map[string]func(am.Snapshot) int64{
	"messages":       func(s am.Snapshot) int64 { return s.MsgsSent },
	"accepted":       func(s am.Snapshot) int64 { return s.MsgsSent },
	"suppressed":     func(s am.Snapshot) int64 { return s.MsgsSuppressed },
	"handlers":       func(s am.Snapshot) int64 { return s.HandlersRun },
	"envelopes":      func(s am.Snapshot) int64 { return s.Envelopes },
	"bytes":          func(s am.Snapshot) int64 { return s.BytesSent },
	"ctrl-msgs":      func(s am.Snapshot) int64 { return s.CtrlMsgs },
	"td-waves":       func(s am.Snapshot) int64 { return s.TDWaves },
	"acks":           func(s am.Snapshot) int64 { return s.AckMsgs },
	"dropped":        func(s am.Snapshot) int64 { return s.EnvelopesDropped },
	"retransmits":    func(s am.Snapshot) int64 { return s.Retransmits },
	"dup-suppressed": func(s am.Snapshot) int64 { return s.DupsSuppressed },
	"crashes":        func(s am.Snapshot) int64 { return s.RankCrashes },
	"aborts":         func(s am.Snapshot) int64 { return s.EpochAborts },
	"recoveries":     func(s am.Snapshot) int64 { return s.Recoveries },
	"checkpoints":    func(s am.Snapshot) int64 { return s.Checkpoints },
}

// statCells returns one table cell per named substrate column, all read from
// a single counter snapshot of u.
func statCells(u *am.Universe, cols ...string) []any {
	s := u.Stats.Snapshot()
	out := make([]any, len(cols))
	for i, c := range cols {
		f, ok := statColumns[c]
		if !ok {
			panic("experiments: unknown substrate column " + c)
		}
		out[i] = f(s)
	}
	return out
}

// row concatenates leading experiment-specific cells, substrate cells, and
// trailing cells into one table row for Table.Add.
func row(lead []any, stats []any, tail ...any) []any {
	out := make([]any, 0, len(lead)+len(stats)+len(tail))
	out = append(out, lead...)
	out = append(out, stats...)
	return append(out, tail...)
}
