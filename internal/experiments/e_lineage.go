package experiments

import (
	"fmt"
	"time"

	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/harness"
	"declpat/internal/obs"
	"declpat/internal/pattern"
)

// E19Lineage exercises the causal lineage plane end to end.
//
// E19a runs BFS, SSSP, and CC traced with lineage and reconstructs each
// run's critical path — the realized handler→send→handler chain that gated
// the run's quiescence — under both termination detectors and with
// coalescing ablated (CoalesceSize 1). The decomposition separates handler
// execution on the chain from wait (queueing + simulated link latency) and
// the quiescence tail after the last handler; "path/span" is how much of the
// run's wall time the chain explains. Coalescing trades chain wait for
// fewer envelopes; the four-counter detector pays its control waves in the
// tail.
//
// E19b is the BFS chain-depth histogram: how many handler invocations sit
// at each causal depth. For level-synchronous BFS the histogram's depth
// reach tracks the traversal depth of the graph, and its mass shows where
// the frontier peaked — read directly off the trace, no algorithm knowledge
// used.
//
// E19c prices the lineage plane the way E17 prices the rest of the
// substrate: the same traced BFS with lineage stamped (LineageAuto, the
// traced-run default) vs forced off, repetitions interleaved so machine
// drift cannot bias one row. Lineage also grows the simulated wire format
// by 8 bytes per message, visible in the bytes column.
func E19Lineage(sc Scale) []*harness.Table {
	n, edges := workload(sc)

	runWL := func(name string, cfg am.Config) (*am.Universe, time.Duration) {
		gopts := defaultGOpts()
		if name == "cc" {
			gopts = distgraph.Options{Symmetrize: true}
		}
		e := newEnv(cfg, n, edges, gopts, pattern.DefaultPlanOptions())
		var body func(r *am.Rank)
		switch name {
		case "bfs":
			b := algorithms.NewBFS(e.eng)
			body = func(r *am.Rank) { b.Run(r, 0) }
		case "sssp":
			s := algorithms.NewSSSP(e.eng)
			body = func(r *am.Rank) { s.Run(r, 0) }
		case "cc":
			c := algorithms.NewCC(e.eng, e.lm)
			body = func(r *am.Rank) { c.Run(r) }
		}
		d := harness.Time(func() { e.u.Run(body) })
		return e.u, d
	}

	a := harness.NewTable("E19a: critical-path decomposition (4 ranks x 2 threads, traced)",
		"workload", "detector", "coalesce", "epochs", "handlers", "max-depth",
		"path-exec", "path-wait", "quiesce-tail", "path/span")
	var bfsLineage *obs.Lineage
	for _, wl := range []string{"bfs", "sssp", "cc"} {
		for _, det := range []am.DetectorKind{am.DetectorAtomic, am.DetectorFourCounter} {
			for _, coalesce := range []int{64, 1} {
				u, _ := runWL(wl, am.Config{
					Ranks: 4, ThreadsPerRank: 2, CoalesceSize: coalesce,
					Detector: det, Timing: true, TraceCapacity: 1 << 21,
				})
				meta, recs := u.ExportTrace(wl)
				lin := obs.BuildLineage(meta, recs)
				if wl == "bfs" && det == am.DetectorAtomic && coalesce == 64 {
					bfsLineage = lin
				}
				var span, exec, wait, tail int64
				maxDepth := 0
				for _, cp := range lin.CriticalPaths() {
					span += cp.SpanNs
					exec += cp.ExecNs
					wait += cp.WaitNs
					tail += cp.TailNs
					if d := cp.Depth(); d > maxDepth {
						maxDepth = d
					}
				}
				share := "-"
				if span > 0 {
					share = fmt.Sprintf("%.0f%%", 100*float64(exec+wait+tail)/float64(span))
				}
				a.Add(wl, det.String(), coalesce, len(lin.Epochs), lin.Handlers(), maxDepth,
					time.Duration(exec), time.Duration(wait), time.Duration(tail), share)
			}
		}
	}

	b := harness.NewTable("E19b: BFS chain-depth histogram (atomic detector, coalesce 64)",
		"depth", "handlers")
	if bfsLineage != nil {
		depths := map[int]int{}
		maxDepth := 0
		for _, e := range bfsLineage.Epochs {
			for _, node := range e.Nodes {
				depths[node.Depth]++
				if node.Depth > maxDepth {
					maxDepth = node.Depth
				}
			}
		}
		for d := 1; d <= maxDepth; d++ {
			if depths[d] > 0 {
				b.Add(d, depths[d])
			}
		}
	}

	c := harness.NewTable("E19c: lineage overhead (traced BFS, 4 ranks x 2 threads)",
		"config", "messages", "bytes", "min-time", "median", "vs-off")
	configs := []struct {
		name string
		mode am.LineageMode
	}{
		{"tracing, lineage off", am.LineageOff},
		{"tracing + lineage", am.LineageAuto},
	}
	const reps = 5
	us := make([]*am.Universe, len(configs))
	times := make([][]time.Duration, len(configs))
	iter := func(i int) time.Duration {
		u, d := runWL("bfs", am.Config{
			Ranks: 4, ThreadsPerRank: 2, CoalesceSize: 64,
			TraceCapacity: 1 << 21, Lineage: configs[i].mode,
		})
		us[i] = u
		return d
	}
	for i := range configs {
		iter(i) // warmup outside the measurement
	}
	for rep := 0; rep < reps; rep++ {
		for i := range configs {
			times[i] = append(times[i], iter(i))
		}
	}
	var base float64
	for i, conf := range configs {
		ds := times[i]
		for x := 1; x < len(ds); x++ {
			for y := x; y > 0 && ds[y] < ds[y-1]; y-- {
				ds[y], ds[y-1] = ds[y-1], ds[y]
			}
		}
		min, med := ds[0], ds[len(ds)/2]
		if base == 0 {
			base = float64(min)
		}
		c.Add(row([]any{conf.name}, statCells(us[i], "messages", "bytes"),
			min, med, harness.Ratio(float64(min), base))...)
	}
	return []*harness.Table{a, b, c}
}
