package experiments

import (
	"encoding/json"
	"io"
	"sync"

	"declpat/internal/am"
)

// BenchRecord is one experiment's machine-readable substrate cost: wall
// time plus the message and envelope totals of every universe the
// experiment built, summed from Universe.Metrics(). CI archives a run of
// these so regressions in message volume or runtime show up as a diffable
// artifact rather than a table buried in logs.
type BenchRecord struct {
	ID        string `json:"id"`
	Title     string `json:"title"`
	WallNs    int64  `json:"wall_ns"`
	Msgs      int64  `json:"msgs"`
	Envelopes int64  `json:"envelopes"`
	Handlers  int64  `json:"handlers"`
	Universes int    `json:"universes"`
}

// BenchReport is the top-level BENCH json document.
type BenchReport struct {
	RMATScale  int           `json:"rmat_scale"`
	EdgeFactor int           `json:"edge_factor"`
	Seed       uint64        `json:"seed"`
	TotalNs    int64         `json:"total_ns"`
	Records    []BenchRecord `json:"records"`
}

var benchMu sync.Mutex
var benchOn bool
var benchUs []*am.Universe

// BenchEnable turns on universe tracking for bench collection (set once by
// cmd/experiments before the suite runs; the suite itself is sequential).
func BenchEnable() {
	benchMu.Lock()
	benchOn = true
	benchUs = nil
	benchMu.Unlock()
}

// benchTrack registers a universe with the bench collector. Called from
// newEnv and from the experiments that build universes directly.
func benchTrack(u *am.Universe) {
	benchMu.Lock()
	if benchOn {
		benchUs = append(benchUs, u)
	}
	benchMu.Unlock()
}

// BenchCollect drains the universes tracked since the last call and returns
// their summed counters (read via Universe.Metrics, so the numbers match
// what the metrics endpoint would report).
func BenchCollect() (msgs, envelopes, handlers int64, universes int) {
	benchMu.Lock()
	us := benchUs
	benchUs = nil
	benchMu.Unlock()
	for _, u := range us {
		c := u.Metrics().Counters
		msgs += c.MsgsSent
		envelopes += c.Envelopes
		handlers += c.HandlersRun
	}
	return msgs, envelopes, handlers, len(us)
}

// WriteBenchJSON writes the report as indented JSON.
func WriteBenchJSON(w io.Writer, rep BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
