package experiments

import (
	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/harness"
	"declpat/internal/pattern"
)

// E12LightHeavy measures the Δ-stepping light/heavy edge split the paper
// cites as a further optimization (§II-A), enabled by the planner's
// early-exit evaluation of the entry-local weight guard: heavy edges send no
// relax messages during the light phases.
func E12LightHeavy(sc Scale) []*harness.Table {
	n, edges := workload(sc)
	t := harness.NewTable("E12: Δ-stepping light/heavy split",
		"variant", "delta", "bucket-epochs", "messages", "time", "wrong")
	for _, delta := range []int64{16, 64, 256} {
		{
			e := newEnv(am.Config{Ranks: 4, ThreadsPerRank: 2}, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
			s := algorithms.NewSSSP(e.eng)
			s.UseDelta(e.u, delta)
			d := harness.Time(func() { e.u.Run(func(r *am.Rank) { s.Run(r, 0) }) })
			t.Add(row([]any{"plain", delta, s.BucketEpochs()}, statCells(e.u, "messages"), d,
				checkSSSP(s.Dist.Gather(), n, edges, 0))...)
		}
		{
			e := newEnv(am.Config{Ranks: 4, ThreadsPerRank: 2}, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
			s := algorithms.NewSSSP(e.eng)
			s.UseDeltaLightHeavy(e.u, delta)
			d := harness.Time(func() { e.u.Run(func(r *am.Rank) { s.Run(r, 0) }) })
			t.Add(row([]any{"light/heavy", delta, s.BucketEpochs()}, statCells(e.u, "messages"), d,
				checkSSSP(s.Dist.Gather(), n, edges, 0))...)
		}
	}
	return []*harness.Table{t}
}
