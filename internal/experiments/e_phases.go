package experiments

import (
	"fmt"
	"time"

	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/harness"
	"declpat/internal/pattern"
)

// ObsRecord is one cell of the E22 phase-timer overhead matrix: an
// algorithm run with the telemetry plane off or on, its wall time, and —
// when timing is on — the per-phase totals the timers recorded. The
// machine-readable form (`experiments -obs-json`) is embedded in
// BENCH_obs.json so CI diffs carry the end-to-end overhead next to the
// zero-allocation microbenchmark gate.
type ObsRecord struct {
	Algo        string           `json:"algo"`
	Timing      bool             `json:"timing"`
	Msgs        int64            `json:"msgs"`
	WallNs      int64            `json:"wall_ns"`   // min over reps
	MedianNs    int64            `json:"median_ns"` // median over reps
	OverheadPct float64          `json:"overhead_pct"`
	PhaseNs     map[string]int64 `json:"phase_ns,omitempty"`
	PhaseSpans  map[string]int64 `json:"phase_spans,omitempty"`
}

// e22Algos: the acceptance set — the three kernels whose phase timers must
// cost ≤5% with timing on and nothing with it off.
var e22Algos = []string{"bfs", "sssp", "cc"}

// E22ObsRecords runs the BFS/SSSP/CC x {timing off, timing on} matrix.
// Repetitions are interleaved across configurations (like E17) so machine
// drift cannot bias one column, and the overhead is computed min-vs-min.
func E22ObsRecords(sc Scale) []ObsRecord {
	n, edges := workload(sc)
	var recs []ObsRecord
	for _, algo := range e22Algos {
		gopts := defaultGOpts()
		if algo == "cc" {
			gopts.Symmetrize = true
		}
		var us [2]*am.Universe
		var times [2][]time.Duration
		iter := func(timing bool) time.Duration {
			cfg := am.Config{Ranks: 4, ThreadsPerRank: 2, Timing: timing}
			return harness.Time(func() {
				e := newEnv(cfg, n, edges, gopts, pattern.DefaultPlanOptions())
				var body func(r *am.Rank)
				switch algo {
				case "bfs":
					b := algorithms.NewBFS(e.eng)
					body = func(r *am.Rank) { b.Run(r, 0) }
				case "sssp":
					s := algorithms.NewSSSP(e.eng)
					body = func(r *am.Rank) { s.Run(r, 0) }
				case "cc":
					c := algorithms.NewCC(e.eng, e.lm)
					body = func(r *am.Rank) { c.Run(r) }
				}
				e.u.Run(body)
				if timing {
					us[1] = e.u
				} else {
					us[0] = e.u
				}
			})
		}
		const reps = 5
		iter(false) // warmup both paths outside the measurement
		iter(true)
		for rep := 0; rep < reps; rep++ {
			times[0] = append(times[0], iter(false))
			times[1] = append(times[1], iter(true))
		}
		var mins [2]time.Duration
		var meds [2]time.Duration
		for i := range times {
			ds := times[i]
			for a := 1; a < len(ds); a++ {
				for b := a; b > 0 && ds[b] < ds[b-1]; b-- {
					ds[b], ds[b-1] = ds[b-1], ds[b]
				}
			}
			mins[i], meds[i] = ds[0], ds[len(ds)/2]
		}
		for i, timing := range []bool{false, true} {
			rec := ObsRecord{
				Algo: algo, Timing: timing,
				Msgs:   us[i].Stats.Snapshot().MsgsSent,
				WallNs: mins[i].Nanoseconds(), MedianNs: meds[i].Nanoseconds(),
			}
			if timing {
				rec.OverheadPct = (float64(mins[1])/float64(mins[0]) - 1) * 100
				rec.PhaseNs = map[string]int64{}
				rec.PhaseSpans = map[string]int64{}
				for name, h := range us[1].Phases() {
					rec.PhaseNs[name] = h.Sum
					rec.PhaseSpans[name] = h.Count
				}
			}
			recs = append(recs, rec)
		}
	}
	return recs
}

// E22PhaseTimers renders the matrix as the suite table. The headline claim:
// timing-on overhead stays within single-digit percent on every kernel
// (E22's committed baseline records ≤5%), and with timing off the scopes
// compile to a nil check — the off column is the same program as before the
// telemetry plane existed.
func E22PhaseTimers(sc Scale) []*harness.Table {
	t := harness.NewTable("E22: phase-timer overhead (BFS/SSSP/CC, 4 ranks x 2 threads, min of 5 interleaved reps)",
		"algorithm", "timing", "messages", "min-time", "median", "overhead", "kernel-ns", "spans")
	for _, r := range E22ObsRecords(sc) {
		timing, over := "off", "-"
		kernel, spans := "-", "-"
		if r.Timing {
			timing = "on"
			over = fmt.Sprintf("%+.1f%%", r.OverheadPct)
			kernel = fmt.Sprint(r.PhaseNs["kernel"])
			var total int64
			for _, n := range r.PhaseSpans {
				total += n
			}
			spans = fmt.Sprint(total)
		}
		t.Add(r.Algo, timing, r.Msgs,
			time.Duration(r.WallNs).Round(time.Microsecond),
			time.Duration(r.MedianNs).Round(time.Microsecond),
			over, kernel, spans)
	}
	return []*harness.Table{t}
}
