package experiments

import (
	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/harness"
	"declpat/internal/pattern"
)

// E13PushPull compares PageRank's push pattern (scatter over out-edges: one
// message per edge, remote atomic add) against the pull pattern (gather over
// in-edges: a two-hop remote read per edge) — the message asymmetry the
// bidirectional storage model (§III-A) lets patterns choose between.
func E13PushPull(sc Scale) []*harness.Table {
	n, edges := workload(sc)
	const iters = 10
	t := harness.NewTable("E13: PageRank push vs pull (10 rounds)",
		"mode", "plan-msgs/edge", "messages", "handlers", "time", "max-|Δrank|")
	var ranks [2][]int64
	for i, mode := range []algorithms.PageRankMode{algorithms.PageRankPush, algorithms.PageRankPull} {
		gopts := distgraph.Options{}
		name := "push(out_edges)"
		if mode == algorithms.PageRankPull {
			gopts.Bidirectional = true
			name = "pull(in_edges)"
		}
		e := newEnv(am.Config{Ranks: 4, ThreadsPerRank: 2}, n, edges, gopts, pattern.DefaultPlanOptions())
		pr := algorithms.NewPageRank(e.eng, mode)
		pr.MaxIters = iters
		pr.Tolerance = 0
		d := harness.Time(func() {
			e.u.Run(func(r *am.Rank) { pr.Run(r) })
		})
		ranks[i] = pr.Rank.Gather()
		maxDiff := int64(0)
		if i == 1 {
			for v := range ranks[0] {
				diff := ranks[0][v] - ranks[1][v]
				if diff < 0 {
					diff = -diff
				}
				if diff > maxDiff {
					maxDiff = diff
				}
			}
		}
		t.Add(row([]any{name, pr.Action.PlanInfo().Conds[0].Messages},
			statCells(e.u, "messages", "handlers"), d, maxDiff)...)
	}
	return []*harness.Table{t}
}
