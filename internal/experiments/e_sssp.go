package experiments

import (
	"fmt"

	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/harness"
	"declpat/internal/pattern"
)

// E1Strategies reproduces Fig. 1's comparison: the fixed-point SSSP performs
// more (wasted) relaxations than Δ-stepping, whose work profile and epoch
// count vary with Δ; both share the same relax pattern.
func E1Strategies(sc Scale) []*harness.Table {
	n, edges := workload(sc)
	t := harness.NewTable("E1: SSSP strategies (RMAT scale "+itoa(sc.RMATScale)+", "+itoa(len(edges))+" edges)",
		"strategy", "delta", "bucket-epochs", "relax-attempts", "relax-success", "messages", "time", "wrong")
	run := func(name string, delta int64, mk func(u *am.Universe, s *algorithms.SSSP)) {
		e := newEnv(am.Config{Ranks: 4, ThreadsPerRank: 2}, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
		s := algorithms.NewSSSP(e.eng)
		mk(e.u, s)
		var dur string
		d := harness.Time(func() {
			e.u.Run(func(r *am.Rank) { s.Run(r, 0) })
		})
		dur = d.String()
		attempts := s.Relax.Stats.TestsTrue.Load() + s.Relax.Stats.TestsFalse.Load()
		deltaStr := "-"
		if delta > 0 {
			deltaStr = fmt.Sprint(delta)
		}
		t.Add(row([]any{name, deltaStr, s.BucketEpochs(), attempts, s.Relax.Stats.ModsChanged.Load()},
			statCells(e.u, "messages"), dur, checkSSSP(s.Dist.Gather(), n, edges, 0))...)
	}
	run("fixed_point", 0, func(u *am.Universe, s *algorithms.SSSP) { s.UseFixedPoint() })
	for _, delta := range []int64{1, 8, 32, 128, 512, 1 << 40} {
		run("delta", delta, func(u *am.Universe, s *algorithms.SSSP) { s.UseDelta(u, delta) })
	}
	run("delta-distributed", 32, func(u *am.Universe, s *algorithms.SSSP) { s.UseDeltaDistributed(u, 32, 2) })
	return []*harness.Table{t}
}

// E5Coalescing sweeps the coalescing factor (§IV: "coalescing greatly
// improves performance when large amounts of messages are sent").
func E5Coalescing(sc Scale) []*harness.Table {
	n, edges := workload(sc)
	t := harness.NewTable("E5: coalescing factor (fixed-point SSSP)",
		"coalesce", "messages", "envelopes", "bytes", "time", "wrong")
	for _, cs := range []int{1, 4, 16, 64, 256, 1024} {
		e := newEnv(am.Config{Ranks: 4, ThreadsPerRank: 2, CoalesceSize: cs}, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
		s := algorithms.NewSSSP(e.eng)
		d := harness.Time(func() {
			e.u.Run(func(r *am.Rank) { s.Run(r, 0) })
		})
		t.Add(row([]any{cs}, statCells(e.u, "messages", "envelopes", "bytes"),
			d, checkSSSP(s.Dist.Gather(), n, edges, 0))...)
	}
	return []*harness.Table{t}
}

// E6Reduction measures the caching/reduction layer (§IV: "caching allows to
// avoid unnecessary message sends ... in algorithms that produce potentially
// large amounts of repetitive work") on the hand-written SSSP.
func E6Reduction(sc Scale) []*harness.Table {
	n, edges := workload(sc)
	t := harness.NewTable("E6: reduction cache (hand-written AM++ SSSP)",
		"cache", "accepted", "suppressed", "handlers", "envelopes", "time", "wrong")
	for _, cached := range []bool{false, true} {
		u := am.New(4, am.WithThreads(2), am.WithCoalesce(256))
		benchTrack(u)
		g := buildGraph(u, n, edges, defaultGOpts())
		h := algorithms.NewHandSSSP(u, g)
		if cached {
			h.WithReductionCache()
		}
		d := harness.Time(func() {
			u.Run(func(r *am.Rank) { h.Run(r, 0) })
		})
		name := "off"
		if cached {
			name = "on"
		}
		t.Add(row([]any{name}, statCells(u, "accepted", "suppressed", "handlers", "envelopes"),
			d, checkSSSP(h.Dist.Gather(), n, edges, 0))...)
	}
	return []*harness.Table{t}
}

// E7Scaling sweeps ranks × handler threads (strong scaling shape over the
// simulated machine).
func E7Scaling(sc Scale) []*harness.Table {
	n, edges := workload(sc)
	sssp := harness.NewTable("E7a: strong scaling — fixed-point SSSP",
		"ranks", "threads", "time", "speedup")
	var base float64
	for _, rc := range [][2]int{{1, 1}, {2, 1}, {2, 2}, {4, 1}, {4, 2}, {8, 2}} {
		min, _ := harness.MinMed(3, func() {
			e := newEnv(am.Config{Ranks: rc[0], ThreadsPerRank: rc[1]}, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
			s := algorithms.NewSSSP(e.eng)
			e.u.Run(func(r *am.Rank) { s.Run(r, 0) })
		})
		if base == 0 {
			base = float64(min)
		}
		sssp.Add(rc[0], rc[1], min, harness.Ratio(base, float64(min)))
	}
	cc := harness.NewTable("E7b: strong scaling — CC parallel search",
		"ranks", "threads", "time", "speedup")
	var ccBase float64
	ugopts := defaultGOpts()
	ugopts.Symmetrize = true
	for _, rc := range [][2]int{{1, 1}, {2, 2}, {4, 2}, {8, 2}} {
		min, _ := harness.MinMed(3, func() {
			e := newEnv(am.Config{Ranks: rc[0], ThreadsPerRank: rc[1]}, n, edges, ugopts, pattern.DefaultPlanOptions())
			c := algorithms.NewCC(e.eng, e.lm)
			c.FlushEvery = 64
			e.u.Run(func(r *am.Rank) { c.Run(r) })
		})
		if ccBase == 0 {
			ccBase = float64(min)
		}
		cc.Add(rc[0], rc[1], min, harness.Ratio(ccBase, float64(min)))
	}
	return []*harness.Table{sssp, cc}
}

// E8Termination compares the shared-counter detector against the
// four-counter control-message protocol, for plain epochs (fixed point) and
// try_finish-driven distributed Δ-stepping.
func E8Termination(sc Scale) []*harness.Table {
	n, edges := workload(sc)
	t := harness.NewTable("E8: termination detection",
		"workload", "detector", "ctrl-msgs", "td-waves", "time", "wrong")
	for _, det := range []am.DetectorKind{am.DetectorAtomic, am.DetectorFourCounter} {
		e := newEnv(am.Config{Ranks: 4, ThreadsPerRank: 2, Detector: det}, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
		s := algorithms.NewSSSP(e.eng)
		d := harness.Time(func() {
			e.u.Run(func(r *am.Rank) { s.Run(r, 0) })
		})
		t.Add(row([]any{"fixed_point", det.String()}, statCells(e.u, "ctrl-msgs", "td-waves"), d,
			checkSSSP(s.Dist.Gather(), n, edges, 0))...)
	}
	for _, det := range []am.DetectorKind{am.DetectorAtomic, am.DetectorFourCounter} {
		e := newEnv(am.Config{Ranks: 4, ThreadsPerRank: 2, Detector: det}, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
		s := algorithms.NewSSSP(e.eng)
		s.UseDeltaDistributed(e.u, 64, 2)
		d := harness.Time(func() {
			e.u.Run(func(r *am.Rank) { s.Run(r, 0) })
		})
		t.Add(row([]any{"delta-dist(try_finish)", det.String()}, statCells(e.u, "ctrl-msgs", "td-waves"), d,
			checkSSSP(s.Dist.Gather(), n, edges, 0))...)
	}
	return []*harness.Table{t}
}

// E9Abstraction compares pattern-engine SSSP/BFS against the hand-written
// AM++ versions: same results, same message shape, engine dispatch overhead
// on top.
func E9Abstraction(sc Scale) []*harness.Table {
	n, edges := workload(sc)
	t := harness.NewTable("E9: abstraction overhead (pattern engine vs hand-written AM++)",
		"algorithm", "impl", "messages", "handlers", "time", "wrong")
	cfg := am.Config{Ranks: 4, ThreadsPerRank: 2}

	// SSSP.
	{
		e := newEnv(cfg, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
		s := algorithms.NewSSSP(e.eng)
		d := harness.Time(func() { e.u.Run(func(r *am.Rank) { s.Run(r, 0) }) })
		t.Add(row([]any{"sssp", "pattern"}, statCells(e.u, "messages", "handlers"), d,
			checkSSSP(s.Dist.Gather(), n, edges, 0))...)
	}
	{
		u := am.New(cfg.Ranks, am.WithConfig(cfg))
		benchTrack(u)
		g := buildGraph(u, n, edges, defaultGOpts())
		h := algorithms.NewHandSSSP(u, g)
		d := harness.Time(func() { u.Run(func(r *am.Rank) { h.Run(r, 0) }) })
		t.Add(row([]any{"sssp", "hand-written"}, statCells(u, "messages", "handlers"), d,
			checkSSSP(h.Dist.Gather(), n, edges, 0))...)
	}
	// BFS.
	{
		e := newEnv(cfg, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
		b := algorithms.NewBFS(e.eng)
		d := harness.Time(func() { e.u.Run(func(r *am.Rank) { b.Run(r, 0) }) })
		t.Add(row([]any{"bfs", "pattern"}, statCells(e.u, "messages", "handlers"), d, "-")...)
	}
	{
		u := am.New(cfg.Ranks, am.WithConfig(cfg))
		benchTrack(u)
		g := buildGraph(u, n, edges, defaultGOpts())
		h := algorithms.NewHandBFS(u, g)
		d := harness.Time(func() { u.Run(func(r *am.Rank) { h.Run(r, 0) }) })
		t.Add(row([]any{"bfs", "hand-written"}, statCells(u, "messages", "handlers"), d, "-")...)
	}
	return []*harness.Table{t}
}
