package experiments

import (
	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/harness"
	"declpat/internal/pattern"
	"declpat/internal/seq"
)

// E3CCPacing reproduces the §II-B observation that "starting too many
// searches may lead to many remote accesses to record component conflicts":
// the epoch_flush pacing of Fig. 3's start loop controls how many searches
// run concurrently, trading fewer search waves against more recorded
// conflicts and resolution work.
func E3CCPacing(sc Scale) []*harness.Table {
	n, edges := workload(sc)
	want := seq.Components(n, edges)
	t := harness.NewTable("E3: CC parallel search — epoch_flush pacing",
		"flush-every", "searches", "claims", "conflicts", "jump-rounds", "messages", "time", "wrong")
	gopts := distgraph.Options{Symmetrize: true}
	for _, fe := range []int{1, 8, 64, 1 << 30} {
		e := newEnv(am.Config{Ranks: 4, ThreadsPerRank: 2}, n, edges, gopts, pattern.DefaultPlanOptions())
		c := algorithms.NewCC(e.eng, e.lm)
		c.FlushEvery = fe
		d := harness.Time(func() {
			e.u.Run(func(r *am.Rank) { c.Run(r) })
		})
		claims := int64(n) - c.SearchesStarted()
		conflicts := c.Search.Stats.ModsChanged.Load() - claims
		feStr := itoa(fe)
		if fe == 1<<30 {
			feStr = "inf"
		}
		t.Add(row([]any{feStr, c.SearchesStarted(), claims, conflicts, c.JumpRounds},
			statCells(e.u, "messages"), d, wrongPartition(c.Comp.Gather(), want))...)
	}
	return []*harness.Table{t}
}

// wrongPartition counts vertices whose component assignment is inconsistent
// with the reference partition.
func wrongPartition(comp []int64, want []distgraph.Vertex) int {
	repr := map[int64]distgraph.Vertex{}
	back := map[distgraph.Vertex]int64{}
	bad := 0
	for v := range comp {
		c, w := comp[v], want[v]
		if r, ok := repr[c]; ok && r != w {
			bad++
			continue
		}
		repr[c] = w
		if r, ok := back[w]; ok && r != c {
			bad++
			continue
		}
		back[w] = c
	}
	return bad
}
