package experiments

import (
	"strings"
	"testing"

	"declpat/internal/pattern"
)

// tinyScale keeps the whole suite fast in tests.
func tinyScale() Scale { return Scale{RMATScale: 7, EdgeFactor: 6, Seed: 9} }

func TestAllExperimentsProduceTables(t *testing.T) {
	for _, ex := range All() {
		ex := ex
		t.Run(ex.ID, func(t *testing.T) {
			tables := ex.Run(tinyScale())
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if tb.Rows() == 0 {
					t.Fatalf("table %q has no rows", tb.Title)
				}
				out := tb.String()
				if !strings.Contains(out, "--") {
					t.Fatalf("table %q did not render:\n%s", tb.Title, out)
				}
			}
		})
	}
}

// TestE1CorrectEverywhere: every SSSP strategy row must report zero wrong
// vertices.
func TestE1CorrectEverywhere(t *testing.T) {
	tables := E1Strategies(tinyScale())
	out := tables[0].String()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "fixed_point") || strings.HasPrefix(line, "delta") {
			fields := strings.Fields(line)
			if fields[len(fields)-1] != "0" {
				t.Fatalf("strategy row reports wrong vertices: %s", line)
			}
		}
	}
}

// TestE4FigureCounts: the planner table must show the 8-vs-7 counts of
// Fig. 5.
func TestE4FigureCounts(t *testing.T) {
	out := E4Planner(tinyScale())[0].String()
	if !strings.Contains(out, "8") || !strings.Contains(out, "7") {
		t.Fatalf("unexpected E4 table:\n%s", out)
	}
}

// TestE2MergeSavesMessages: merged three-locality plan must use fewer
// messages than unmerged.
func TestE2MergeSavesMessages(t *testing.T) {
	merged := compilePlans(threeLocPattern(), pattern.PlanOptions{Merge: true, Fold: true})
	unmerged := compilePlans(threeLocPattern(), pattern.PlanOptions{Merge: false, Fold: true})
	if m, u := merged[0].Conds[0].Messages, unmerged[0].Conds[0].Messages; m >= u {
		t.Fatalf("merged=%d unmerged=%d", m, u)
	}
}
