package experiments

import (
	"sync"
	"time"

	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/harness"
	"declpat/internal/obs"
	"declpat/internal/pattern"
)

// E17Observability quantifies what the observability substrate costs.
//
// E17a runs the fixed-point SSSP under four configurations: the single-shard
// legacy counter layout (every rank contending on one set of cache lines —
// the pre-obs global-atomics design, reproduced via Config.UnshardedStats),
// the default per-rank sharded layout, and then each optional layer on top
// (timing histograms, span tracing). Sharding must not be slower than the
// global layout; timing and tracing buy their data with bounded overhead.
// Repetitions are interleaved across configurations so slow machine drift
// cannot bias one row against another.
//
// E17b isolates the counter hot path from the workload: goroutines doing
// nothing but Inc on a shared counter, single-shard vs one shard per
// goroutine. This is the contention the substrate removes from every SendTo
// (visible only with real hardware parallelism; on one core the layouts tie).
func E17Observability(sc Scale) []*harness.Table {
	n, edges := workload(sc)
	t := harness.NewTable("E17a: observability overhead (fixed-point SSSP, 4 ranks x 2 threads)",
		"config", "messages", "min-time", "median", "vs-unsharded")
	configs := []struct {
		name string
		cfg  am.Config
	}{
		{"unsharded counters (legacy)", am.Config{Ranks: 4, ThreadsPerRank: 2, UnshardedStats: true}},
		{"sharded counters", am.Config{Ranks: 4, ThreadsPerRank: 2}},
		{"+ timing histograms", am.Config{Ranks: 4, ThreadsPerRank: 2, Timing: true}},
		{"+ span tracing", am.Config{Ranks: 4, ThreadsPerRank: 2, Timing: true, TraceCapacity: 1 << 20}},
	}
	const reps = 5
	us := make([]*am.Universe, len(configs))
	times := make([][]time.Duration, len(configs))
	iter := func(i int) time.Duration {
		return harness.Time(func() {
			e := newEnv(configs[i].cfg, n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
			s := algorithms.NewSSSP(e.eng)
			e.u.Run(func(r *am.Rank) { s.Run(r, 0) })
			us[i] = e.u
		})
	}
	for i := range configs {
		iter(i) // warmup: heap growth and cold code paths outside the measurement
	}
	for rep := 0; rep < reps; rep++ {
		for i := range configs {
			times[i] = append(times[i], iter(i))
		}
	}
	var base float64
	for i, c := range configs {
		ds := times[i]
		for a := 1; a < len(ds); a++ {
			for b := a; b > 0 && ds[b] < ds[b-1]; b-- {
				ds[b], ds[b-1] = ds[b-1], ds[b]
			}
		}
		min, med := ds[0], ds[len(ds)/2]
		if base == 0 {
			base = float64(min)
		}
		t.Add(row([]any{c.name}, statCells(us[i], "messages"),
			min, med, harness.Ratio(float64(min), base))...)
	}

	const workers, perWorker = 8, 1 << 20
	hot := harness.NewTable("E17b: counter hot path ("+itoa(workers)+" goroutines x "+itoa(perWorker)+" Inc)",
		"layout", "min-time", "ns/op")
	for _, shards := range []int{1, workers} {
		c := obs.NewCounters(shards, "x")
		min, _ := harness.MinMed(3, func() {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(sh obs.Shard) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						sh.Inc(0)
					}
				}(c.Shard(w % shards))
			}
			wg.Wait()
		})
		name := "single shard (legacy)"
		if shards > 1 {
			name = "per-goroutine shards"
		}
		hot.Add(name, min, float64(min)/float64(workers*perWorker)/float64(time.Nanosecond))
	}
	return []*harness.Table{t, hot}
}
