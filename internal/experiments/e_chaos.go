package experiments

import (
	"fmt"

	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/harness"
	"declpat/internal/pattern"
)

// E16Chaos measures the cost of the reliable-delivery protocol (acks,
// sequence numbers, retransmission) as the injected drop rate rises. The
// first row is the trusted transport (FaultPlan nil — the zero-overhead
// default); the drop=0% row is the reliable protocol with no faults, i.e.
// pure protocol overhead; the remaining rows add dropped envelopes (with
// duplication and delay/reordering held at 10% each) that the protocol must
// recover. "wrong" must stay 0 in every row: results are bit-identical to
// the fault-free run regardless of drop rate.
func E16Chaos(sc Scale) []*harness.Table {
	n, edges := workload(sc)
	t := harness.NewTable("E16: fault overhead vs drop rate (fixed-point SSSP, 4 ranks x 2 threads)",
		"transport", "drop", "messages", "envelopes", "acks", "dropped", "retransmits", "dup-suppressed", "ctrl-msgs", "bytes", "time", "wrong")
	run := func(name string, plan *am.FaultPlan) {
		e := newEnv(am.Config{Ranks: 4, ThreadsPerRank: 2, CoalesceSize: 64, FaultPlan: plan},
			n, edges, defaultGOpts(), pattern.DefaultPlanOptions())
		s := algorithms.NewSSSP(e.eng)
		d := harness.Time(func() {
			e.u.Run(func(r *am.Rank) { s.Run(r, 0) })
		})
		drop := "-"
		if plan != nil {
			drop = fmt.Sprintf("%g%%", 100*plan.Drop)
		}
		t.Add(row([]any{name, drop},
			statCells(e.u, "messages", "envelopes", "acks", "dropped",
				"retransmits", "dup-suppressed", "ctrl-msgs", "bytes"),
			d, checkSSSP(s.Dist.Gather(), n, edges, 0))...)
	}
	run("trusted", nil)
	for _, drop := range []float64{0, 0.01, 0.05, 0.20} {
		plan := &am.FaultPlan{
			Seed: harness.DeriveSeed(sc.Seed, fmt.Sprintf("e16/drop=%g", drop)),
			Drop: drop,
		}
		if drop > 0 {
			plan.Dup, plan.Delay = 0.10, 0.10
		}
		run("reliable", plan)
	}
	return []*harness.Table{t}
}
