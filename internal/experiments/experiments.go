// Package experiments implements the reproduction experiment suite E1–E22
// described in DESIGN.md: for every figure and performance-relevant claim of
// the paper it regenerates a table (message counts, work counts, ablation
// factors, scaling shape). cmd/experiments prints all tables; EXPERIMENTS.md
// records one run together with the expectations derived from the paper.
package experiments

import (
	"fmt"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/harness"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/seq"
)

// Scale configures the experiment workload sizes. DefaultScale finishes the
// whole suite in well under a minute on a laptop.
type Scale struct {
	RMATScale  int // 2^scale vertices
	EdgeFactor int
	Seed       uint64
}

// DefaultScale is the EXPERIMENTS.md configuration.
func DefaultScale() Scale { return Scale{RMATScale: 12, EdgeFactor: 8, Seed: 42} }

// Experiment is one runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(sc Scale) []*harness.Table
}

// All returns the experiment registry in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Fig. 1 — fixed-point vs Δ-stepping SSSP", E1Strategies},
		{"E2", "Fig. 6 / §IV-A — merge optimization", E2Merge},
		{"E3", "Fig. 3 — CC parallel search pacing", E3CCPacing},
		{"E4", "Fig. 5 — gather planner: naive DFS vs direct", E4Planner},
		{"E5", "§IV — message coalescing", E5Coalescing},
		{"E6", "§IV — caching/reduction layer", E6Reduction},
		{"E7", "§I — strong scaling over ranks × threads", E7Scaling},
		{"E8", "§III-D/§IV — termination detection", E8Termination},
		{"E9", "§I — abstraction overhead vs hand-written AM++", E9Abstraction},
		{"E10", "Fig. 6 — subexpression folding payload", E10Folding},
		{"E11", "§II-B — pointer jumping (two-hop gather)", E11PointerJump},
		{"E12", "§II-A — Δ-stepping light/heavy split (early exit)", E12LightHeavy},
		{"E13", "§III-A — PageRank push (out_edges) vs pull (in_edges)", E13PushPull},
		{"E14", "§VI — pattern translator: generated code vs engine vs hand-written", E14Codegen},
		{"E15", "§VI — expressiveness: the pattern-based algorithm suite", E15Expressiveness},
		{"E16", "robustness — fault overhead vs drop rate (reliable transport)", E16Chaos},
		{"E17", "observability — sharded counters, timing, and tracing overhead", E17Observability},
		{"E18", "robustness — checkpoint/recovery overhead vs crash rate", E18Recovery},
		{"E19", "observability — causal lineage: critical paths, chain depth, overhead", E19Lineage},
		{"E20", "performance — wire codec: bytes & allocations, fixed vs gob", E20Codec},
		{"E21", "robustness — transport seam: chan vs unix vs tcp loopback, faulted links", E21Transport},
		{"E22", "observability — phase-timer overhead: telemetry plane off vs on", E22PhaseTimers},
	}
}

// workload builds the standard weighted RMAT edge list.
func workload(sc Scale) (n int, edges []distgraph.Edge) {
	return gen.RMAT(sc.RMATScale, sc.EdgeFactor, gen.Weights{Min: 1, Max: 100}, sc.Seed)
}

// env bundles a configured universe + engine over the standard workload.
type env struct {
	u     *am.Universe
	g     *distgraph.Graph
	eng   *pattern.Engine
	lm    *pmap.LockMap
	n     int
	edges []distgraph.Edge
}

func newEnv(cfg am.Config, n int, edges []distgraph.Edge, gopts distgraph.Options, popts pattern.PlanOptions) *env {
	u := am.New(cfg.Ranks, am.WithConfig(cfg))
	benchTrack(u)
	d := distgraph.NewBlockDist(n, cfg.Ranks)
	g := distgraph.Build(d, edges, gopts)
	lm := pmap.NewLockMap(d, 1)
	return &env{
		u: u, g: g, lm: lm, n: n, edges: edges,
		eng: pattern.NewEngine(u, g, lm, popts),
	}
}

// checkSSSP counts vertices whose distance differs from Dijkstra's answer.
func checkSSSP(got []int64, n int, edges []distgraph.Edge, src distgraph.Vertex) int {
	want := seq.Dijkstra(n, edges, src)
	bad := 0
	for v := range want {
		w := want[v]
		if w == seq.Inf {
			w = pattern.Inf
		}
		if got[v] != w {
			bad++
		}
	}
	return bad
}

// invariantViolations counts edges violating the SSSP invariant
// dist[trg] <= dist[src] + w on the computed labels.
func invariantViolations(got []int64, edges []distgraph.Edge) int {
	bad := 0
	for _, e := range edges {
		if got[e.Src] != pattern.Inf && got[e.Src]+e.W < got[e.Dst] {
			bad++
		}
	}
	return bad
}

// defaultGOpts returns the directed-graph build options used by the SSSP
// experiments.
func defaultGOpts() distgraph.Options { return distgraph.Options{} }

// buildGraph builds a block-distributed graph sized to u's rank count.
func buildGraph(u *am.Universe, n int, edges []distgraph.Edge, gopts distgraph.Options) *distgraph.Graph {
	return distgraph.Build(distgraph.NewBlockDist(n, u.Ranks()), edges, gopts)
}

func itoa(n int) string { return fmt.Sprint(n) }
