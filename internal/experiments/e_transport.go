package experiments

import (
	"time"

	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/harness"
	"declpat/internal/pattern"
)

// TransportRecord is one E21 measurement: a (algorithm, detector, transport)
// cell. The socket transports frame, CRC-seal, and push every envelope
// through a real kernel socket; the link-health counters (reconnects,
// heartbeat misses, requeued frames) are only non-zero on the faulted cell,
// whose seeded disconnect/flap schedule proves the counters — and the
// exactly-once contract — under connection failure.
type TransportRecord struct {
	Algo            string  `json:"algo"`
	Detector        string  `json:"detector"`
	Transport       string  `json:"transport"`
	Msgs            int64   `json:"msgs"`
	WireBytes       int64   `json:"wire_bytes"`
	BytesPer        float64 `json:"wire_bytes_per_msg"`
	WallNs          int64   `json:"wall_ns"`
	Retransmits     int64   `json:"retransmits"`
	Reconnects      int64   `json:"reconnects"`
	HeartbeatMisses int64   `json:"heartbeat_misses"`
	FramesRequeued  int64   `json:"frames_requeued"`
	Wrong           int     `json:"wrong"`
}

// e21Transports: "chan" is the in-process channel backend in reliable wire
// mode (the floor every socket cell is compared against), then Unix-domain
// sockets and TCP loopback, and TCP again under a seeded disconnect + flap
// schedule.
var e21Transports = []string{"chan", "unix", "tcp", "tcp+faults"}

// E21TransportRecords runs the BFS/SSSP/CC x detector x transport matrix.
// Results of every transport are compared against the same
// algorithm+detector's chan run; Wrong counts differing vertices (must be 0
// — the transport seam must not change computation).
func E21TransportRecords(sc Scale) []TransportRecord {
	n, edges := workload(sc)
	var recs []TransportRecord
	for _, algo := range []string{"bfs", "sssp", "cc"} {
		for _, det := range e20Detectors {
			var ref []int64
			for _, tr := range e21Transports {
				rec, got := e21Run(sc, algo, det.name, det.kind, tr, n, edges)
				if tr == "chan" {
					ref = got
				}
				for v := range got {
					if got[v] != ref[v] {
						rec.Wrong++
					}
				}
				recs = append(recs, rec)
			}
		}
	}
	return recs
}

func e21SockTransport(network string, faulted bool) am.Transport {
	opt := am.SockOptions{
		Network:       network,
		Heartbeat:     20 * time.Millisecond,
		Liveness:      200 * time.Millisecond,
		ReconnectBase: time.Millisecond,
		ReconnectMax:  10 * time.Millisecond,
		TickInterval:  200 * time.Microsecond,
	}
	if faulted {
		opt.Faults = &am.SockFaultPlan{
			Disconnects: []am.SockDisconnect{
				{Src: 0, Dest: 1, AfterFrames: 10},
				{Src: 2, Dest: 3, AfterFrames: 25},
			},
			Flaps: []am.SockFlap{{Src: 1, Dest: 2, Period: 40, Count: 3}},
		}
	}
	return am.SockTransport(opt)
}

func e21Run(sc Scale, algo, detName string, det am.DetectorKind, tr string,
	n int, edges []distgraph.Edge) (TransportRecord, []int64) {
	gopts := defaultGOpts()
	if algo == "cc" {
		gopts.Symmetrize = true
	}
	cfg := am.Config{Ranks: 4, ThreadsPerRank: 2, CoalesceSize: 64, Detector: det}
	switch tr {
	case "chan":
		// Reliable wire mode on the channel backend, so the comparison
		// isolates the socket hop rather than the codec layer.
		cfg.FaultPlan = &am.FaultPlan{Seed: harness.DeriveSeed(sc.Seed, "e21/"+algo+"/"+detName)}
	case "unix":
		cfg.Transport = e21SockTransport("unix", false)
	case "tcp":
		cfg.Transport = e21SockTransport("tcp", false)
	case "tcp+faults":
		cfg.Transport = e21SockTransport("tcp", true)
	}
	e := newEnv(cfg, n, edges, gopts, pattern.DefaultPlanOptions())
	if got := e.eng.MsgType().WithWire().CodecName(); got != "fixed" {
		panic("E21: pattern message lost its fixed layout: codec " + got)
	}
	var body func(r *am.Rank)
	var gather func() []int64
	switch algo {
	case "bfs":
		b := algorithms.NewBFS(e.eng)
		body = func(r *am.Rank) { b.Run(r, 0) }
		gather = b.Level.Gather
	case "sssp":
		s := algorithms.NewSSSP(e.eng)
		body = func(r *am.Rank) { s.Run(r, 0) }
		gather = s.Dist.Gather
	case "cc":
		c := algorithms.NewCC(e.eng, e.lm)
		body = func(r *am.Rank) { c.Run(r) }
		gather = func() []int64 { return canonicalize(c.Comp.Gather()) }
	}
	d := harness.Time(func() { e.u.Run(body) })
	s := e.u.Stats.Snapshot()
	rec := TransportRecord{
		Algo: algo, Detector: detName, Transport: tr,
		Msgs: s.MsgsSent, WireBytes: s.WireBytes, WallNs: d.Nanoseconds(),
		Retransmits: s.Retransmits, Reconnects: s.Reconnects,
		HeartbeatMisses: s.HeartbeatMisses, FramesRequeued: s.FramesRequeued,
	}
	if rec.Msgs > 0 {
		rec.BytesPer = float64(rec.WireBytes) / float64(rec.Msgs)
	}
	return rec, gather()
}

// E21Transport renders the record matrix as the suite table. The headline
// claims: Unix and TCP loopback match the channel backend bit for bit
// ("wrong" 0 everywhere), and the faulted TCP cell completes with non-zero
// reconnect and requeue counters — connection failure costs time, never
// answers.
func E21Transport(sc Scale) []*harness.Table {
	t := harness.NewTable("E21: transport seam — chan vs unix vs tcp loopback (BFS/SSSP/CC, 4 ranks x 2 threads, fixed codec)",
		"algorithm", "detector", "transport", "messages", "wire-bytes", "time", "retransmits", "reconnects", "hb-misses", "requeued", "wrong")
	for _, r := range E21TransportRecords(sc) {
		t.Add(r.Algo, r.Detector, r.Transport, r.Msgs, r.WireBytes,
			time.Duration(r.WallNs).Round(time.Millisecond),
			r.Retransmits, r.Reconnects, r.HeartbeatMisses, r.FramesRequeued, r.Wrong)
	}
	return []*harness.Table{t}
}
