package query_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/query"
)

const (
	tScale = 8
	tEF    = 8
	tSeed  = 42
	tRanks = 4
)

func testEdges() (int, []distgraph.Edge) {
	return gen.RMAT(tScale, tEF, gen.Weights{Min: 1, Max: 100}, tSeed)
}

// buildService assembles a resident service over the shared test graph.
func buildService(t *testing.T, opts ...query.Option) *query.Service {
	t.Helper()
	n, edges := testEdges()
	u := am.New(tRanks, am.WithThreads(2))
	dist := distgraph.NewBlockDist(n, tRanks)
	g := distgraph.Build(dist, edges, distgraph.Options{})
	eng := pattern.NewEngine(u, g, pmap.NewLockMap(dist, 1), pattern.DefaultPlanOptions())
	return query.New(eng, opts...)
}

// oneShot computes the reference answers with dedicated one-shot runs in a
// fresh universe over the identical graph: per-source BFS levels and SSSP
// distances, plus the converged PageRank vector and its round count.
func oneShot(t *testing.T, sources []distgraph.Vertex) (bfs, sssp map[distgraph.Vertex][]int64, pr []int64, prRounds int) {
	t.Helper()
	n, edges := testEdges()
	u := am.New(tRanks, am.WithThreads(2))
	dist := distgraph.NewBlockDist(n, tRanks)
	g := distgraph.Build(dist, edges, distgraph.Options{})
	eng := pattern.NewEngine(u, g, pmap.NewLockMap(dist, 1), pattern.DefaultPlanOptions())
	b := algorithms.NewBFS(eng)
	ss := algorithms.NewSSSP(eng)
	p := algorithms.NewPageRank(eng, algorithms.PageRankPush)
	bfs = map[distgraph.Vertex][]int64{}
	sssp = map[distgraph.Vertex][]int64{}
	err := u.Run(func(r *am.Rank) {
		for _, src := range sources {
			b.Run(r, src)
			r.Barrier()
			if r.ID() == 0 {
				bfs[src] = b.Level.Gather()
			}
			r.Barrier()
			ss.Run(r, src)
			r.Barrier()
			if r.ID() == 0 {
				sssp[src] = ss.Dist.Gather()
			}
			r.Barrier()
		}
		p.Run(r)
		if r.ID() == 0 {
			pr = p.Rank.Gather()
			prRounds = p.Rounds
		}
	})
	if err != nil {
		t.Fatalf("one-shot reference run: %v", err)
	}
	return bfs, sssp, pr, prRounds
}

func eqVec(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestConcurrentMixedBitIdentical floods one resident universe with >= 64
// concurrent mixed BFS/SSSP/PageRank queries from many goroutines and checks
// every result is bit-identical to its one-shot equivalent.
func TestConcurrentMixedBitIdentical(t *testing.T) {
	sources := []distgraph.Vertex{1, 7, 33, 64, 100, 150, 200, 250}
	wantBFS, wantSSSP, wantPR, wantRounds := oneShot(t, sources)

	s := buildService(t, query.WithMaxFusion(8), query.WithQueueDepth(1024), query.WithRetain(1024))
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()

	const goroutines = 24
	const perG = 3 // 72 queries total, mixed across the three algorithms
	tickets := make([]*query.Ticket, goroutines*perG)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				idx := gi*perG + k
				req := query.Request{Algo: query.Algo(idx % 3), Source: sources[idx%len(sources)]}
				tk, err := s.Submit(req)
				if err != nil {
					t.Errorf("submit %d: %v", idx, err)
					return
				}
				tickets[idx] = tk
			}
		}(gi)
	}
	wg.Wait()

	for idx, tk := range tickets {
		if tk == nil {
			continue
		}
		res, err := tk.Wait()
		if err != nil {
			t.Fatalf("query %d failed: %v", idx, err)
		}
		switch res.Algo {
		case query.BFS:
			if !eqVec(res.Values, wantBFS[res.Source]) {
				t.Errorf("BFS from %d: values differ from one-shot run", res.Source)
			}
		case query.SSSP:
			if !eqVec(res.Values, wantSSSP[res.Source]) {
				t.Errorf("SSSP from %d: values differ from one-shot run", res.Source)
			}
		case query.PageRank:
			if !eqVec(res.Values, wantPR) {
				t.Errorf("PageRank: values differ from one-shot run")
			}
			if res.Rounds != wantRounds {
				t.Errorf("PageRank rounds = %d, one-shot ran %d", res.Rounds, wantRounds)
			}
		}
	}

	if n := s.Universe().Stats.Snapshot().QueryMismatches; n != 0 {
		t.Errorf("substrate observed %d query-context mismatches on a trusted transport", n)
	}
	s.Stop()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestFusionBatch pre-loads 16 BFS queries so the first scheduling round must
// fuse 8 of them (the MaxFusion cap) into a single sweep.
func TestFusionBatch(t *testing.T) {
	sources := []distgraph.Vertex{1, 7, 33, 64, 100, 150, 200, 250}
	wantBFS, _, _, _ := oneShot(t, sources)

	s := buildService(t, query.WithMaxFusion(8))
	var tickets []*query.Ticket
	for i := 0; i < 16; i++ {
		tk, err := s.Submit(query.Request{Algo: query.BFS, Source: sources[i%len(sources)]})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()

	fused := 0
	for i, tk := range tickets {
		res, err := tk.Wait()
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if res.BatchSize > fused {
			fused = res.BatchSize
		}
		if !eqVec(res.Values, wantBFS[res.Source]) {
			t.Errorf("fused BFS from %d differs from one-shot run", res.Source)
		}
	}
	if fused < 8 {
		t.Errorf("largest fused batch = %d queries, want >= 8 in one sweep", fused)
	}
	if st := s.Stats(); st.MaxBatch < 8 {
		t.Errorf("Stats().MaxBatch = %d, want >= 8", st.MaxBatch)
	}
	s.Stop()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestDeadlineExpiry submits an already-expired query and a healthy one: the
// first fails with ErrDeadline at the admission boundary, the second
// completes.
func TestDeadlineExpiry(t *testing.T) {
	s := buildService(t)
	expired, err := s.Submit(query.Request{Algo: query.BFS, Source: 1, Deadline: -time.Millisecond})
	if err != nil {
		t.Fatalf("submit expired: %v", err)
	}
	healthy, err := s.Submit(query.Request{Algo: query.BFS, Source: 1, Deadline: time.Minute})
	if err != nil {
		t.Fatalf("submit healthy: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()

	if _, err := expired.Wait(); !errors.Is(err, query.ErrDeadline) {
		t.Errorf("expired query: err = %v, want ErrDeadline", err)
	}
	if _, err := healthy.Wait(); err != nil {
		t.Errorf("healthy query: %v", err)
	}
	st, err := s.Status(expired.ID())
	if err != nil {
		t.Fatalf("status of expired query: %v", err)
	}
	if st.State != query.StateFailed || !errors.Is(st.Err, query.ErrDeadline) {
		t.Errorf("expired status = %q/%v, want failed/ErrDeadline", st.State, st.Err)
	}
	s.Stop()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestCancel covers both cancellation paths: a queued query canceled before
// the service starts, and a long PageRank run canceled between rounds while
// its epochs are in flight.
func TestCancel(t *testing.T) {
	// PageRank tuned to grind: tolerance 1 never converges before the round
	// cap, so the job runs many scheduling rounds.
	s := buildService(t, query.WithPageRank(400, 1))
	queued, err := s.Submit(query.Request{Algo: query.SSSP, Source: 3})
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	queued.Cancel()

	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()

	if _, err := queued.Wait(); !errors.Is(err, query.ErrCanceled) {
		t.Errorf("queued cancel: err = %v, want ErrCanceled", err)
	}

	long, err := s.Submit(query.Request{Algo: query.PageRank})
	if err != nil {
		t.Fatalf("submit long PR: %v", err)
	}
	// Wait until the job is demonstrably mid-run, then cancel between rounds.
	for {
		st, err := s.Status(long.ID())
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if st.State == query.StateRunning {
			break
		}
		if st.State == query.StateDone || st.State == query.StateFailed {
			t.Fatalf("long PR finished (%s) before cancel — tune it slower", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	long.Cancel()
	if _, err := long.Wait(); !errors.Is(err, query.ErrCanceled) {
		t.Errorf("mid-run cancel: err = %v, want ErrCanceled", err)
	}

	// The plane keeps serving after cancellations.
	after, err := s.Submit(query.Request{Algo: query.BFS, Source: 5})
	if err != nil {
		t.Fatalf("submit after cancel: %v", err)
	}
	if _, err := after.Wait(); err != nil {
		t.Errorf("query after cancel: %v", err)
	}
	s.Stop()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestAdmissionControl covers submit-time rejections: a full queue and an
// out-of-range source.
func TestAdmissionControl(t *testing.T) {
	s := buildService(t, query.WithQueueDepth(2))
	if _, err := s.Submit(query.Request{Algo: query.BFS, Source: 1}); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	if _, err := s.Submit(query.Request{Algo: query.BFS, Source: 2}); err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if _, err := s.Submit(query.Request{Algo: query.BFS, Source: 3}); !errors.Is(err, query.ErrQueueFull) {
		t.Errorf("submit over capacity: err = %v, want ErrQueueFull", err)
	}
	if _, err := s.Submit(query.Request{Algo: query.BFS, Source: 1 << 30}); !errors.Is(err, query.ErrBadSource) {
		t.Errorf("bad source: err = %v, want ErrBadSource", err)
	}
	if st := s.Stats(); st.Rejected != 2 {
		t.Errorf("rejected counter = %d, want 2", st.Rejected)
	}
}

// TestValueLookupAndMetrics exercises the point-lookup path and the
// OpenMetrics exposition of a served universe.
func TestValueLookupAndMetrics(t *testing.T) {
	sources := []distgraph.Vertex{9}
	wantBFS, _, _, _ := oneShot(t, sources)

	s := buildService(t)
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()

	tk, err := s.Submit(query.Request{Algo: query.BFS, Source: 9})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	for _, v := range []distgraph.Vertex{0, 9, 100} {
		got, err := s.Value(tk.ID(), v)
		if err != nil {
			t.Fatalf("value(%d): %v", v, err)
		}
		if got != wantBFS[9][v] {
			t.Errorf("value(%d) = %d, want %d", v, got, wantBFS[9][v])
		}
	}
	if _, err := s.Value(9999, 0); !errors.Is(err, query.ErrUnknown) {
		t.Errorf("unknown id: err = %v, want ErrUnknown", err)
	}
	if res.BatchSize < 1 {
		t.Errorf("batch size = %d, want >= 1", res.BatchSize)
	}

	var sb strings.Builder
	if err := s.WriteOpenMetrics(&sb); err != nil {
		t.Fatalf("write metrics: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"declpat_query_queue_depth",
		"declpat_query_admitted_total 1",
		"declpat_query_completed_total 1",
		"declpat_query_latency_seconds_bucket",
		"declpat_query_latency_quantile_seconds{algo=\"bfs\",q=\"0.5\"}",
		"declpat_query_batch_size_bucket",
		"declpat_ranks 4",
		"# EOF",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	s.Stop()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestEpochsAreQueryTagged checks the substrate side of the tentpole: a
// traced service run attributes epoch trace events to the query contexts
// that issued them.
func TestEpochsAreQueryTagged(t *testing.T) {
	n, edges := testEdges()
	u := am.New(tRanks, am.WithThreads(2), am.WithTraceCapacity(1<<16))
	dist := distgraph.NewBlockDist(n, tRanks)
	g := distgraph.Build(dist, edges, distgraph.Options{})
	eng := pattern.NewEngine(u, g, pmap.NewLockMap(dist, 1), pattern.DefaultPlanOptions())
	s := query.New(eng)
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()

	tk1, err := s.Submit(query.Request{Algo: query.BFS, Source: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := tk1.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	tk2, err := s.Submit(query.Request{Algo: query.SSSP, Source: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := tk2.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	s.Stop()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	_, recs := u.ExportTrace("tagged")
	seen := map[int64]bool{}
	for _, r := range recs {
		if r.Kind == "epoch" {
			seen[r.Q] = true
		}
	}
	if !seen[tk1.ID()] || !seen[tk2.ID()] {
		t.Errorf("epoch trace records not tagged per query: saw contexts %v, want both %d and %d",
			seen, tk1.ID(), tk2.ID())
	}
}
