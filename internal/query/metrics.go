package query

import (
	"io"
	"strconv"
	"sync/atomic"

	"declpat/internal/obs"
)

// metrics is the query plane's own counter/histogram set, exported as the
// declpat_query_* OpenMetrics families alongside the universe's substrate
// families. All fields are atomics or internally-sharded histograms, so hot
// paths never take the service lock.
type metrics struct {
	admitted  atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	expired   atomic.Int64

	// latency holds per-algorithm end-to-end latency (submit → result,
	// admission wait included), nanosecond observations.
	latency [numAlgos]*obs.Histogram
	// batch records the fusion width of every executed sweep (and the
	// member count of every completed PageRank job).
	batch    *obs.Histogram
	maxBatch atomic.Int64
}

func (m *metrics) init() {
	for i := range m.latency {
		// 4µs .. ~34s, doubling.
		m.latency[i] = obs.NewHistogram(1, obs.ExpBounds(1<<12, 24)...)
	}
	// 1 .. 128 queries per sweep, doubling.
	m.batch = obs.NewHistogram(1, obs.ExpBounds(1, 8)...)
}

func (m *metrics) observeBatch(n int) {
	m.batch.Observe(0, int64(n))
	for {
		cur := m.maxBatch.Load()
		if int64(n) <= cur || m.maxBatch.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// ServiceStats is a plain-value snapshot of the query plane's metrics.
type ServiceStats struct {
	Admitted, Rejected, Completed, Failed, Canceled, Expired int64
	QueueDepth, Active                                       int
	// Latency maps algorithm names to end-to-end latency histograms
	// (nanoseconds).
	Latency map[string]obs.HistSnapshot
	// BatchSize is the fusion-width distribution; MaxBatch its high-water
	// mark.
	BatchSize obs.HistSnapshot
	MaxBatch  int64
}

// Stats snapshots the query plane's metrics.
func (s *Service) Stats() ServiceStats {
	st := ServiceStats{
		Admitted:  s.met.admitted.Load(),
		Rejected:  s.met.rejected.Load(),
		Completed: s.met.completed.Load(),
		Failed:    s.met.failed.Load(),
		Canceled:  s.met.canceled.Load(),
		Expired:   s.met.expired.Load(),
		Latency:   make(map[string]obs.HistSnapshot, int(numAlgos)),
		BatchSize: s.met.batch.Snapshot(),
		MaxBatch:  s.met.maxBatch.Load(),
	}
	for a := Algo(0); a < numAlgos; a++ {
		st.Latency[a.String()] = s.met.latency[a].Snapshot()
	}
	s.mu.Lock()
	st.QueueDepth = len(s.queue)
	for _, j := range s.byID {
		if j.state == StateRunning {
			st.Active++
		}
	}
	s.mu.Unlock()
	return st
}

// WriteOpenMetrics writes the full exposition for a resident service: the
// declpat_query_* families (queue depth, admission counters, per-algorithm
// latency histograms and quantiles, fusion widths) followed by the
// universe's substrate families and the # EOF terminator. This is the
// payload behind declpat-serve's /metrics endpoint.
func (s *Service) WriteOpenMetrics(w io.Writer) error {
	st := s.Stats()
	om := obs.NewOMWriter(w)

	om.Family("declpat_query_queue_depth", "gauge", "Admitted queries waiting for a scheduling round.")
	om.SampleInt("declpat_query_queue_depth", nil, int64(st.QueueDepth))
	om.Family("declpat_query_active", "gauge", "Queries currently running (batch members and PageRank attachments).")
	om.SampleInt("declpat_query_active", nil, int64(st.Active))

	counters := []struct {
		name, help string
		v          int64
	}{
		{"declpat_query_admitted_total", "Queries admitted into the queue.", st.Admitted},
		{"declpat_query_rejected_total", "Submissions rejected at admission (full queue, bad request, stopped).", st.Rejected},
		{"declpat_query_completed_total", "Queries answered successfully.", st.Completed},
		{"declpat_query_failed_total", "Queries failed (canceled, expired, or stopped).", st.Failed},
		{"declpat_query_canceled_total", "Queries canceled via their ticket.", st.Canceled},
		{"declpat_query_deadline_expired_total", "Queries that missed their deadline.", st.Expired},
	}
	for _, c := range counters {
		om.Family(c.name, "counter", c.help)
		om.SampleInt(c.name, nil, c.v)
	}

	om.Family("declpat_query_latency_seconds", "histogram", "End-to-end query latency (submit to result) by algorithm.")
	for a := Algo(0); a < numAlgos; a++ {
		om.Hist("declpat_query_latency_seconds", []string{"algo", a.String()}, st.Latency[a.String()], 1e-9)
	}
	om.Family("declpat_query_latency_quantile_seconds", "gauge", "End-to-end query latency quantiles by algorithm (interpolated from the histogram).")
	for a := Algo(0); a < numAlgos; a++ {
		snap := st.Latency[a.String()]
		for _, q := range []float64{0.5, 0.95, 0.99} {
			om.Sample("declpat_query_latency_quantile_seconds",
				[]string{"algo", a.String(), "q", strconv.FormatFloat(q, 'g', -1, 64)},
				float64(snap.Quantile(q))*1e-9)
		}
	}

	om.Family("declpat_query_batch_size", "histogram", "Queries fused per executed sweep (and members per completed PageRank job).")
	om.Hist("declpat_query_batch_size", nil, st.BatchSize, 1)
	om.Family("declpat_query_batch_max", "gauge", "Largest fusion width observed.")
	om.SampleInt("declpat_query_batch_max", nil, st.MaxBatch)

	if err := om.Flush(); err != nil {
		return err
	}
	return s.u.WriteOpenMetrics(w)
}
