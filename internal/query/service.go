// Package query is the resident query plane over a long-lived universe: one
// Service owns a universe, a graph, and pre-bound algorithm slots, and serves
// many concurrent, independently-deadlined queries against them. Queries are
// admitted into a bounded queue, batched (same-algorithm frontiers fuse into
// one epoch sweep), scheduled round-robin (one step per active job per
// scheduling round), and answered from retained per-query property vectors.
//
// The plane leans on three substrate guarantees:
//
//   - Epochs are globally serialized and tagged: every scheduling step runs
//     under am.Rank.EpochCtx with the query (or batch representative) id, so
//     envelopes, detector waves, and trace events of interleaved queries are
//     routed and attributed by query context instead of silently merged.
//   - Collectives are shared-memory, so the leader (rank 0) can mutate the
//     shared schedule between barriers: it decides a plan while the other
//     ranks wait at the publication barrier, and the barrier's happens-before
//     publishes the plan to every rank.
//   - Min-relaxation fixed points (BFS, SSSP) are confluent and PageRank is
//     deterministic integer fixed-point, so a query's result is bit-identical
//     to its one-shot run no matter how many sibling frontiers share the
//     sweep or how rounds interleave.
package query

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/obs"
	"declpat/internal/pattern"
)

// Algo identifies a served algorithm.
type Algo int

const (
	// BFS answers hop counts from a source vertex.
	BFS Algo = iota
	// SSSP answers weighted shortest-path distances from a source vertex.
	SSSP
	// PageRank answers fixed-point ranks (PRScale scale); it has no source,
	// so concurrent PageRank queries dedupe onto one shared stepwise job.
	PageRank

	numAlgos
)

// String returns the lowercase wire name of the algorithm.
func (a Algo) String() string {
	switch a {
	case BFS:
		return "bfs"
	case SSSP:
		return "sssp"
	case PageRank:
		return "pagerank"
	}
	return fmt.Sprintf("algo(%d)", int(a))
}

// ParseAlgo parses a wire name produced by Algo.String.
func ParseAlgo(s string) (Algo, error) {
	switch s {
	case "bfs":
		return BFS, nil
	case "sssp":
		return SSSP, nil
	case "pagerank":
		return PageRank, nil
	}
	return 0, fmt.Errorf("query: unknown algorithm %q", s)
}

// Service errors. Submit-time rejections (ErrQueueFull, ErrBadSource,
// ErrStopped) come back from Submit; the rest surface as a failed ticket's
// error.
var (
	// ErrQueueFull rejects a submission when the admission queue is at
	// capacity.
	ErrQueueFull = errors.New("query: queue full")
	// ErrBadSource rejects a source vertex outside the graph.
	ErrBadSource = errors.New("query: source vertex out of range")
	// ErrStopped fails submissions and outstanding queries of a stopped
	// service.
	ErrStopped = errors.New("query: service stopped")
	// ErrCanceled fails a query canceled via its ticket.
	ErrCanceled = errors.New("query: canceled")
	// ErrDeadline fails a query whose deadline passed before completion.
	ErrDeadline = errors.New("query: deadline exceeded")
	// ErrUnknown reports an id that was never issued or whose retained
	// result has been evicted.
	ErrUnknown = errors.New("query: unknown query id")
	// ErrNotDone reports a value lookup against a query that has not
	// completed.
	ErrNotDone = errors.New("query: not done")
)

// Request describes one query.
type Request struct {
	Algo Algo
	// Source is the query's source vertex (BFS and SSSP; ignored for
	// PageRank).
	Source distgraph.Vertex
	// Deadline bounds the query's total latency (admission wait included);
	// 0 uses the service default, negative is already expired. Deadlines
	// are enforced at step boundaries — an epoch in flight always finishes.
	Deadline time.Duration
}

// Result is a completed query's answer.
type Result struct {
	ID     int64
	Algo   Algo
	Source distgraph.Vertex
	// Values is the computed per-vertex property vector, indexed by global
	// vertex id: BFS levels, SSSP distances, or PageRank fixed-point ranks.
	Values []int64
	// Rounds is the PageRank round count (0 for BFS/SSSP).
	Rounds int
	// BatchSize is the number of queries fused into the sweep (or sharing
	// the PageRank job) that produced this result.
	BatchSize int
	// Queued, Started, Finished are the query's lifecycle timestamps.
	Queued, Started, Finished time.Time
}

// Query lifecycle states (Status.State).
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Status is a point-in-time snapshot of one query.
type Status struct {
	ID      int64
	Algo    Algo
	Source  distgraph.Vertex
	State   string
	Err     error // non-nil iff State == StateFailed
	Rounds  int
	Batch   int
	Queued  time.Time
	Started time.Time // zero until scheduled
	Done    time.Time // zero until finished
}

// job is one admitted query. Lifecycle fields are guarded by Service.mu; the
// done channel is closed (under mu) exactly once, after res/err are final.
type job struct {
	id       int64
	req      Request
	deadline time.Time // zero = none
	queued   time.Time
	started  time.Time
	state    string
	canceled bool
	res      *Result
	err      error
	done     chan struct{}
}

// Ticket is the submitter's handle on an admitted query.
type Ticket struct {
	s *Service
	j *job
}

// ID returns the query id (also the query-context id its epochs are tagged
// with when it leads a batch).
func (t *Ticket) ID() int64 { return t.j.id }

// Done returns a channel closed when the query completes or fails.
func (t *Ticket) Done() <-chan struct{} { return t.j.done }

// Wait blocks until the query completes or fails.
func (t *Ticket) Wait() (*Result, error) {
	<-t.j.done
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	return t.j.res, t.j.err
}

// Cancel requests cancellation. Queued queries are dropped at the next
// scheduling boundary; a running PageRank membership is detached between
// rounds. An epoch in flight always finishes — cancellation is
// step-boundary-granular, never mid-epoch.
func (t *Ticket) Cancel() {
	t.s.mu.Lock()
	t.j.canceled = true
	t.s.mu.Unlock()
	t.s.cond.Broadcast()
}

// Option configures a Service at construction.
type Option func(*Service)

// WithMaxFusion bounds how many same-algorithm queries fuse into one epoch
// sweep (default 8). Each fusion slot pre-binds its own property map, so this
// also sets the BFS/SSSP slot-pool sizes.
func WithMaxFusion(n int) Option {
	return func(s *Service) {
		if n > 0 {
			s.maxFusion = n
		}
	}
}

// WithQueueDepth bounds the admission queue (default 256); submissions beyond
// it are rejected with ErrQueueFull.
func WithQueueDepth(n int) Option {
	return func(s *Service) {
		if n > 0 {
			s.queueDepth = n
		}
	}
}

// WithDefaultDeadline sets the deadline applied to requests that do not carry
// their own (default: none).
func WithDefaultDeadline(d time.Duration) Option {
	return func(s *Service) { s.defaultDeadline = d }
}

// WithRetain bounds how many completed results the service keeps for point
// lookups (default 256, FIFO eviction by completion order).
func WithRetain(n int) Option {
	return func(s *Service) {
		if n > 0 {
			s.retain = n
		}
	}
}

// WithPageRank tunes the shared PageRank job (rounds cap and fixed-point
// tolerance); zero values keep the algorithm defaults.
func WithPageRank(maxIters int, tolerance int64) Option {
	return func(s *Service) {
		s.prIters = maxIters
		s.prTol = tolerance
	}
}

// batch is one fused same-algorithm sweep: up to maxFusion queries, each
// assigned its own pre-bound slot, all seeded and relaxed inside one tagged
// epoch.
type batch struct {
	jobs []*job
	qid  int64 // representative query context: the first member's id
}

// prStep is one scheduling turn of the shared PageRank job. converged is
// written by rank 0 during the step and read by rank 0 in finishRound (same
// goroutine).
type prStep struct {
	qid       int64
	begin     bool
	converged bool
}

// roundPlan is one scheduling round, decided by rank 0 under mu and published
// to every rank by the plan barrier. Round-robin fairness is structural: at
// most one step per active job class per round, so a long PageRank run
// interleaves its rounds with whole BFS/SSSP sweeps.
type roundPlan struct {
	stop bool
	bfs  *batch
	sssp *batch
	pr   *prStep
}

// prState is the shared PageRank job: every PageRank query admitted while it
// runs attaches as a member and all members receive the converged result.
type prState struct {
	members []*job
	begun   bool
	rounds  int
}

// Service is the resident query plane. Construct with New before
// Universe.Run (slot binding registers message types), then drive the
// universe with Serve and submit from any goroutine.
type Service struct {
	eng *pattern.Engine
	u   *am.Universe
	g   *distgraph.Graph

	maxFusion       int
	queueDepth      int
	defaultDeadline time.Duration
	retain          int
	prIters         int
	prTol           int64

	bfsSlots  []*algorithms.BFS
	ssspSlots []*algorithms.SSSP
	pr        *algorithms.PageRank

	met metrics

	mu       sync.Mutex
	cond     *sync.Cond
	nextID   int64
	queue    []*job
	byID     map[int64]*job
	retained []int64 // completed ids in completion order, for eviction
	prJob    *prState
	stopping bool
	serving  bool

	// plan is written by rank 0 in lead() and read by every rank after the
	// plan barrier; the barrier orders the write before the reads and the
	// round-end barrier orders the reads before the next write.
	plan roundPlan
}

// New builds a resident query service over eng's universe and graph,
// pre-binding MaxFusion BFS slots, MaxFusion SSSP slots, and one shared
// PageRank job. Must be called before Universe.Run.
func New(eng *pattern.Engine, opts ...Option) *Service {
	s := &Service{
		eng:        eng,
		u:          eng.Universe(),
		g:          eng.Graph(),
		maxFusion:  8,
		queueDepth: 256,
		retain:     256,
		byID:       map[int64]*job{},
	}
	s.cond = sync.NewCond(&s.mu)
	for _, o := range opts {
		o(s)
	}
	for i := 0; i < s.maxFusion; i++ {
		s.bfsSlots = append(s.bfsSlots, algorithms.NewBFS(eng))
		s.ssspSlots = append(s.ssspSlots, algorithms.NewSSSP(eng))
	}
	s.pr = algorithms.NewPageRank(eng, algorithms.PageRankPush)
	if s.prIters > 0 {
		s.pr.MaxIters = s.prIters
	}
	if s.prTol > 0 {
		s.pr.Tolerance = s.prTol
	}
	s.met.init()
	return s
}

// Universe returns the service's universe (for metrics and trace export).
func (s *Service) Universe() *am.Universe { return s.u }

// Submit admits one query, returning its ticket immediately. Safe from any
// goroutine, before or during Serve. Rejections (full queue, bad source,
// stopped service) return a nil ticket and the sentinel error.
func (s *Service) Submit(req Request) (*Ticket, error) {
	if req.Algo != PageRank && (req.Source < 0 || int(req.Source) >= s.g.NumVertices()) {
		s.met.rejected.Add(1)
		return nil, ErrBadSource
	}
	if req.Algo < 0 || req.Algo >= numAlgos {
		s.met.rejected.Add(1)
		return nil, fmt.Errorf("query: unknown algorithm %d", int(req.Algo))
	}
	now := time.Now()
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		s.met.rejected.Add(1)
		return nil, ErrStopped
	}
	if len(s.queue) >= s.queueDepth {
		s.mu.Unlock()
		s.met.rejected.Add(1)
		return nil, ErrQueueFull
	}
	s.nextID++
	j := &job{
		id:     s.nextID,
		req:    req,
		queued: now,
		state:  StateQueued,
		done:   make(chan struct{}),
	}
	d := req.Deadline
	if d == 0 {
		d = s.defaultDeadline
	}
	if d != 0 {
		j.deadline = now.Add(d)
	}
	s.queue = append(s.queue, j)
	s.byID[j.id] = j
	s.mu.Unlock()
	s.met.admitted.Add(1)
	s.cond.Broadcast()
	return &Ticket{s: s, j: j}, nil
}

// Ticket returns the handle for a known (not yet evicted) query id.
func (s *Service) Ticket(id int64) (*Ticket, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return &Ticket{s: s, j: j}, true
}

// Status snapshots one query's lifecycle.
func (s *Service) Status(id int64) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	if !ok {
		return Status{}, ErrUnknown
	}
	st := Status{
		ID:      j.id,
		Algo:    j.req.Algo,
		Source:  j.req.Source,
		State:   j.state,
		Err:     j.err,
		Queued:  j.queued,
		Started: j.started,
	}
	if j.res != nil {
		st.Rounds = j.res.Rounds
		st.Batch = j.res.BatchSize
		st.Done = j.res.Finished
	}
	return st, nil
}

// Value answers a point lookup into a completed query's retained property
// vector: the level/distance/rank computed for vertex v.
func (s *Service) Value(id int64, v distgraph.Vertex) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	if !ok {
		return 0, ErrUnknown
	}
	if j.state == StateFailed {
		return 0, j.err
	}
	if j.res == nil {
		return 0, ErrNotDone
	}
	if v < 0 || int(v) >= len(j.res.Values) {
		return 0, ErrBadSource
	}
	return j.res.Values[v], nil
}

// Depth reports the current admission-queue depth.
func (s *Service) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Serve runs the universe with the scheduling loop as its SPMD body,
// blocking until Stop (or a substrate fault). Outstanding queries of a
// stopped or failed service fail with ErrStopped (or the run error).
func (s *Service) Serve() error {
	s.mu.Lock()
	if s.serving {
		s.mu.Unlock()
		return errors.New("query: Serve called twice")
	}
	s.serving = true
	s.mu.Unlock()
	err := s.u.Run(s.body)
	s.shutdown(err)
	return err
}

// Stop asks the scheduling loop to exit after the current round. Idempotent;
// queued and running queries fail with ErrStopped.
func (s *Service) Stop() {
	s.mu.Lock()
	s.stopping = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// shutdown fails every outstanding query once the universe has exited.
func (s *Service) shutdown(runErr error) {
	cause := ErrStopped
	if runErr != nil {
		cause = fmt.Errorf("%w: %v", ErrStopped, runErr)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopping = true
	// Sweep byID, not just the queue: a fault can exit the run with jobs
	// mid-flight in a batch, and their tickets must still resolve.
	for _, j := range s.byID {
		s.failLocked(j, cause)
	}
	s.queue = nil
	s.prJob = nil
}

// body is the per-rank scheduling loop: rank 0 decides a round plan while the
// others wait at the plan barrier, every rank executes the round's steps, and
// rank 0 completes finished jobs after the round-end barrier.
func (s *Service) body(r *am.Rank) {
	for {
		if r.ID() == 0 {
			s.plan = s.lead()
		}
		r.Barrier() // publish plan
		p := s.plan
		if p.stop {
			return
		}
		if p.bfs != nil {
			s.runBFSBatch(r, p.bfs)
		}
		if p.sssp != nil {
			s.runSSSPBatch(r, p.sssp)
		}
		if p.pr != nil {
			s.runPRStep(r, p.pr)
		}
		r.Barrier() // round end: all property-map writes visible to rank 0
		if r.ID() == 0 {
			s.finishRound(p)
		}
	}
}

// lead blocks until there is work (or the service stops) and decides one
// scheduling round. Runs on rank 0 only, under mu.
func (s *Service) lead() roundPlan {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		s.reapLocked(time.Now())
		if s.stopping {
			return roundPlan{stop: true}
		}
		var p roundPlan
		p.bfs = s.takeBatchLocked(BFS)
		p.sssp = s.takeBatchLocked(SSSP)
		s.attachPRLocked()
		if s.prJob != nil {
			p.pr = &prStep{qid: s.prJob.members[0].id, begin: !s.prJob.begun}
			s.prJob.begun = true
		}
		if p.bfs != nil || p.sssp != nil || p.pr != nil {
			return p
		}
		s.cond.Wait()
	}
}

// reapLocked enforces deadlines and cancellations at the step boundary:
// expired or canceled queued jobs fail in place, and dead PageRank members
// detach (the job itself stops only when no member remains).
func (s *Service) reapLocked(now time.Time) {
	live := s.queue[:0]
	for _, j := range s.queue {
		switch {
		case j.canceled:
			s.failLocked(j, ErrCanceled)
		case !j.deadline.IsZero() && now.After(j.deadline):
			s.failLocked(j, ErrDeadline)
		default:
			live = append(live, j)
		}
	}
	s.queue = live
	if s.prJob != nil {
		members := s.prJob.members[:0]
		for _, j := range s.prJob.members {
			switch {
			case j.canceled:
				s.failLocked(j, ErrCanceled)
			case !j.deadline.IsZero() && now.After(j.deadline):
				s.failLocked(j, ErrDeadline)
			default:
				members = append(members, j)
			}
		}
		s.prJob.members = members
		if len(members) == 0 {
			s.prJob = nil
		}
	}
}

// takeBatchLocked removes up to maxFusion queued jobs of the given algorithm
// (FIFO order) and forms the round's fused batch.
func (s *Service) takeBatchLocked(a Algo) *batch {
	var b *batch
	rest := s.queue[:0]
	for _, j := range s.queue {
		if j.req.Algo != a || (b != nil && len(b.jobs) >= s.maxFusion) {
			rest = append(rest, j)
			continue
		}
		if b == nil {
			b = &batch{qid: j.id}
		}
		j.state = StateRunning
		j.started = time.Now()
		b.jobs = append(b.jobs, j)
	}
	s.queue = rest
	return b
}

// attachPRLocked moves every queued PageRank job onto the shared stepwise
// job, creating it if needed. All members receive the same converged result,
// so attachment order is irrelevant.
func (s *Service) attachPRLocked() {
	rest := s.queue[:0]
	for _, j := range s.queue {
		if j.req.Algo != PageRank {
			rest = append(rest, j)
			continue
		}
		if s.prJob == nil {
			s.prJob = &prState{}
		}
		j.state = StateRunning
		j.started = time.Now()
		s.prJob.members = append(s.prJob.members, j)
	}
	s.queue = rest
}

// runBFSBatch executes one fused BFS sweep: every member's slot is reset and
// seeded locally, then all frontiers relax inside a single tagged epoch. The
// slots' property maps are disjoint, so members never interfere; the fixed
// point each slot reaches is the one its one-shot run would reach.
func (s *Service) runBFSBatch(r *am.Rank, b *batch) {
	ph := r.Phase(obs.PhaseCollect)
	seeds := make([][]distgraph.Vertex, len(b.jobs))
	for i, j := range b.jobs {
		s.bfsSlots[i].ResetLocal(r)
		seeds[i] = s.bfsSlots[i].SeedLocal(r, nil, j.req.Source)
	}
	ph.End()
	r.Barrier()
	r.EpochCtx(b.qid, func(*am.Epoch) {
		for i := range b.jobs {
			s.bfsSlots[i].InvokeSeeds(r, seeds[i])
		}
	})
}

// runSSSPBatch is runBFSBatch over the SSSP slot pool.
func (s *Service) runSSSPBatch(r *am.Rank, b *batch) {
	ph := r.Phase(obs.PhaseCollect)
	seeds := make([][]distgraph.Vertex, len(b.jobs))
	for i, j := range b.jobs {
		s.ssspSlots[i].ResetLocal(r)
		seeds[i] = s.ssspSlots[i].SeedLocal(r, nil, j.req.Source)
	}
	ph.End()
	r.Barrier()
	r.EpochCtx(b.qid, func(*am.Epoch) {
		for i := range b.jobs {
			s.ssspSlots[i].InvokeSeeds(r, seeds[i])
		}
	})
}

// runPRStep executes one PageRank round (with the one-time Begin on the
// job's first turn) under the job's query context.
func (s *Service) runPRStep(r *am.Rank, st *prStep) {
	if st.begin {
		s.pr.Begin(r)
		r.Barrier()
	}
	done := s.pr.Round(r, st.qid)
	if r.ID() == 0 {
		st.converged = done
	}
}

// finishRound completes the round's finished jobs on rank 0: gathers each
// member's property vector (the round-end barrier ordered every rank's
// writes before this), stamps results, and closes tickets.
func (s *Service) finishRound(p roundPlan) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.bfs != nil {
		s.met.observeBatch(len(p.bfs.jobs))
		for i, j := range p.bfs.jobs {
			s.completeLocked(j, s.bfsSlots[i].Level.Gather(), 0, len(p.bfs.jobs), now)
		}
	}
	if p.sssp != nil {
		s.met.observeBatch(len(p.sssp.jobs))
		for i, j := range p.sssp.jobs {
			s.completeLocked(j, s.ssspSlots[i].Dist.Gather(), 0, len(p.sssp.jobs), now)
		}
	}
	if p.pr != nil && s.prJob != nil {
		s.prJob.rounds++
		if p.pr.converged || s.prJob.rounds >= s.pr.MaxIters {
			vals := s.pr.Rank.Gather()
			members := s.prJob.members
			s.met.observeBatch(len(members))
			for _, j := range members {
				s.completeLocked(j, vals, s.prJob.rounds, len(members), now)
			}
			s.prJob = nil
		}
	}
}

// completeLocked finalizes one successful job and retains its result for
// point lookups, evicting the oldest retained result beyond the cap.
func (s *Service) completeLocked(j *job, vals []int64, rounds, batchSize int, now time.Time) {
	j.res = &Result{
		ID:        j.id,
		Algo:      j.req.Algo,
		Source:    j.req.Source,
		Values:    vals,
		Rounds:    rounds,
		BatchSize: batchSize,
		Queued:    j.queued,
		Started:   j.started,
		Finished:  now,
	}
	j.state = StateDone
	close(j.done)
	s.met.completed.Add(1)
	s.met.latency[j.req.Algo].Observe(0, now.Sub(j.queued).Nanoseconds())
	s.retainLocked(j)
}

// failLocked finalizes one failed job. Failed jobs stay in the retained ring
// so Status keeps answering for them until eviction.
func (s *Service) failLocked(j *job, cause error) {
	if j.state == StateDone || j.state == StateFailed {
		return
	}
	j.err = cause
	j.state = StateFailed
	close(j.done)
	s.met.failed.Add(1)
	switch {
	case errors.Is(cause, ErrCanceled):
		s.met.canceled.Add(1)
	case errors.Is(cause, ErrDeadline):
		s.met.expired.Add(1)
	}
	s.retainLocked(j)
}

// retainLocked enters a finalized job into the bounded retention ring,
// evicting the oldest entry beyond the cap.
func (s *Service) retainLocked(j *job) {
	s.retained = append(s.retained, j.id)
	for len(s.retained) > s.retain {
		delete(s.byID, s.retained[0])
		s.retained = s.retained[1:]
	}
}
