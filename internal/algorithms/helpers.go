package algorithms

import (
	"declpat/internal/am"
	"declpat/internal/distgraph"
)

// LocalVertices returns the vertices owned by rank r of g, in local order.
func LocalVertices(g *distgraph.Graph, r *am.Rank) []distgraph.Vertex {
	lg := g.Local(r.ID())
	out := make([]distgraph.Vertex, lg.NumLocal())
	for li := range out {
		out[li] = g.Dist().Global(r.ID(), li)
	}
	return out
}
