package algorithms

import (
	"fmt"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/obs"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
)

// PRScale is the fixed-point scale of PageRank values (rank 1.0 == PRScale).
// Words are the engine's value type, so ranks are Q34.30 fixed point.
const PRScale = int64(1) << 30

// PageRankPushPattern spreads each vertex's per-round contribution to its
// out-neighbours with remote atomic adds:
//
//	spread(vertex v) {
//	  generator: e in out_edges;
//	  next[trg(e)] += contrib[v];
//	}
//
// One message per edge; the contribution is entry-local payload.
func PageRankPushPattern() *pattern.Pattern {
	p := pattern.New("PageRank-push")
	contrib := p.VertexProp("contrib")
	next := p.VertexProp("next")
	spread := p.Action("spread", pattern.OutEdges())
	spread.Do().AddTo(next.At(pattern.Trg()), contrib.At(pattern.V()))
	return p
}

// PageRankPullPattern gathers contributions over in-edges (the generator the
// bidirectional storage model exists for): the contribution lives at the
// remote source, so the plan is a two-hop request/response per edge —
// the push/pull message asymmetry measured by experiment E13.
//
//	gather(vertex v) {
//	  generator: e in in_edges;
//	  next[v] += contrib[src(e)];
//	}
func PageRankPullPattern() *pattern.Pattern {
	p := pattern.New("PageRank-pull")
	contrib := p.VertexProp("contrib")
	next := p.VertexProp("next")
	gather := p.Action("gather", pattern.InEdges())
	gather.Do().AddTo(next.At(pattern.V()), contrib.At(pattern.Src()))
	return p
}

// PageRankMode selects the communication direction.
type PageRankMode int

const (
	// PageRankPush scatters contributions over out-edges.
	PageRankPush PageRankMode = iota
	// PageRankPull gathers contributions over in-edges (requires a
	// bidirectional graph).
	PageRankPull
)

// PageRank is a damped PageRank solver over patterns, iterated in one epoch
// per round with local recomputation between epochs (the paper's imperative
// support code around declarative patterns).
type PageRank struct {
	G *distgraph.Graph
	// Rank holds the fixed-point ranks (scale PRScale) after Run.
	Rank *pmap.VertexWord
	// Action is the bound spread/gather action.
	Action *pattern.BoundAction

	contrib *pmap.VertexWord
	next    *pmap.VertexWord
	outdeg  *pmap.VertexWord
	mode    PageRankMode

	// Damping is the damping factor in fixed-point scale (default
	// 0.85 * PRScale).
	Damping int64
	// MaxIters bounds the rounds (default 50).
	MaxIters int
	// Tolerance stops iteration when the total absolute rank change per
	// round falls below it (fixed-point; default PRScale/1e6).
	Tolerance int64
	// Rounds reports the rounds executed by the last Run (maintained on
	// rank 0 only, the existing leader-only-mutation idiom for state updated
	// between collectives).
	Rounds int

	// locals caches each rank's owned-vertex list across rounds (filled by
	// Begin; indexed by rank id, so concurrent SPMD bodies never share an
	// element).
	locals [][]distgraph.Vertex
}

// NewPageRank binds the chosen PageRank pattern over eng's graph. Pull mode
// requires a bidirectional graph. Call before Universe.Run.
func NewPageRank(eng *pattern.Engine, mode PageRankMode) *PageRank {
	g := eng.Graph()
	pr := &PageRank{
		G:         g,
		Rank:      pmap.NewVertexWord(g.Dist(), 0),
		contrib:   pmap.NewVertexWord(g.Dist(), 0),
		next:      pmap.NewVertexWord(g.Dist(), 0),
		outdeg:    pmap.NewVertexWord(g.Dist(), 0),
		mode:      mode,
		Damping:   85 * PRScale / 100,
		MaxIters:  50,
		Tolerance: PRScale / 1_000_000,
	}
	var pat *pattern.Pattern
	var actionName string
	if mode == PageRankPush {
		pat, actionName = PageRankPushPattern(), "spread"
	} else {
		pat, actionName = PageRankPullPattern(), "gather"
	}
	bound, err := eng.Bind(pat, pattern.Bindings{"contrib": pr.contrib, "next": pr.next})
	if err != nil {
		panic(fmt.Sprintf("algorithms: PageRank bind: %v", err))
	}
	pr.Action = bound.Action(actionName)
	pr.locals = make([][]distgraph.Vertex, eng.Universe().Ranks())
	return pr
}

// Begin initializes this rank's solver state for an iterated run: uniform
// initial ranks, cached out-degrees and owned-vertex list, and (on rank 0)
// the round counter. Rank-local — the caller barriers before the first
// Round. Begin/Round is the stepwise decomposition the query plane drives:
// one Round per scheduling turn, so a long PageRank job interleaves fairly
// with other queries' epochs.
func (pr *PageRank) Begin(r *am.Rank) {
	g := pr.G
	rid := r.ID()
	n := int64(g.NumVertices())
	locals := LocalVertices(g, r)
	pr.locals[rid] = locals

	ph := r.Phase(obs.PhaseBuildCSR)
	for _, v := range locals {
		pr.Rank.Set(rid, v, PRScale/n)
		pr.outdeg.Set(rid, v, int64(g.OutDegree(rid, v)))
	}
	ph.End()
	if rid == 0 {
		pr.Rounds = 0
	}
}

// Round executes one PageRank round under query context qid (0 for plain
// runs): local contributions, the dangling-mass all-reduce, one collective
// epoch of spreads/gathers, and the fold. It reports whether the run has
// converged (total absolute rank change below Tolerance). Collective; Begin
// (plus a barrier) must precede the first Round. Deterministic: ranks are
// integer fixed-point and += is order-independent, so the result is
// bit-identical however rounds interleave with other queries' epochs.
func (pr *PageRank) Round(r *am.Rank, qid int64) bool {
	rid := r.ID()
	n := int64(pr.G.NumVertices())
	locals := pr.locals[rid]
	base := (PRScale - pr.Damping) / n

	// Local pre-round: contributions and dangling mass.
	pre := r.Phase(obs.PhaseCollect)
	var dangling int64
	for _, v := range locals {
		rank := pr.Rank.GetRelaxed(rid, v)
		deg := pr.outdeg.GetRelaxed(rid, v)
		if deg == 0 {
			dangling += rank
			pr.contrib.SetRelaxed(rid, v, 0)
		} else {
			pr.contrib.SetRelaxed(rid, v, mulScale(pr.Damping, rank)/deg)
		}
		pr.next.SetRelaxed(rid, v, 0)
	}
	pre.End()
	danglingAll := r.AllReduceSum(dangling)
	danglingShare := mulScale(pr.Damping, danglingAll) / n

	// The declarative part: one epoch of spreads/gathers.
	r.EpochCtx(qid, func(ep *am.Epoch) {
		for _, v := range locals {
			pr.Action.Invoke(r, v)
		}
	})

	// Local post-round: fold in base + dangling, measure change.
	post := r.Phase(obs.PhaseEmit)
	var delta int64
	for _, v := range locals {
		nv := base + danglingShare + pr.next.GetRelaxed(rid, v)
		ov := pr.Rank.GetRelaxed(rid, v)
		if nv > ov {
			delta += nv - ov
		} else {
			delta += ov - nv
		}
		pr.Rank.SetRelaxed(rid, v, nv)
	}
	post.End()
	if rid == 0 {
		pr.Rounds++
	}
	return r.AllReduceSum(delta) < pr.Tolerance
}

// Run iterates PageRank to tolerance or MaxIters. Collective.
func (pr *PageRank) Run(r *am.Rank) {
	pr.Begin(r)
	r.Barrier()
	for iter := 0; iter < pr.MaxIters; iter++ {
		if pr.Round(r, 0) {
			break
		}
	}
	r.Barrier()
}

// mulScale computes (a/PRScale)*b. Operands are bounded by PRScale (total
// rank mass is 1.0), so the product fits in an int64 (2^60 < 2^63).
func mulScale(a, b int64) int64 { return a * b / PRScale }
