package algorithms

import (
	"fmt"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/obs"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
)

// MIS state values.
const (
	misUndecided = 0
	misIn        = 1
	misOut       = 2
)

// MISPattern builds a Luby-style maximal-independent-set round:
//
//	block(vertex v) {                        // v loses to a better neighbour
//	  generator: u in adj;
//	  if (state[v] == 0 && state[u] == 0 && prio[u] < prio[v])
//	    blocked[v] = max(blocked[v], 1);
//	}
//	exclude(vertex v) {                      // MIS members exclude neighbours
//	  generator: u in adj;
//	  if (state[v] == 1 && state[u] == 0)
//	    state[u] = 2;
//	}
//
// The strategy alternates epochs of these actions with local joins (an
// undecided, unblocked vertex enters the MIS) — the paper's mixture of
// declarative patterns and imperative support code.
func MISPattern() *pattern.Pattern {
	p := pattern.New("MIS")
	prio := p.VertexProp("prio")
	state := p.VertexProp("state")
	blocked := p.VertexProp("blocked")

	block := p.Action("block", pattern.Adj())
	block.If(pattern.And(
		pattern.Eq(state.At(pattern.V()), pattern.C(misUndecided)),
		pattern.And(
			pattern.Eq(state.At(pattern.U()), pattern.C(misUndecided)),
			pattern.Lt(prio.At(pattern.U()), prio.At(pattern.V())),
		),
	)).SetMax(blocked.At(pattern.V()), pattern.C(1))

	exclude := p.Action("exclude", pattern.Adj())
	exclude.If(pattern.And(
		pattern.Eq(state.At(pattern.V()), pattern.C(misIn)),
		pattern.Eq(state.At(pattern.U()), pattern.C(misUndecided)),
	)).Set(state.At(pattern.U()), pattern.C(misOut))

	return p
}

// MIS computes a maximal independent set of a symmetrized graph using
// deterministic hash priorities (ties broken by vertex id, so the result is
// machine-independent).
type MIS struct {
	G *distgraph.Graph
	// State[v] after Run: 1 = in the MIS, 2 = excluded.
	State *pmap.VertexWord

	prio, blocked  *pmap.VertexWord
	Block, Exclude *pattern.BoundAction

	// Rounds reports the Luby rounds of the last Run (written by rank 0).
	Rounds int
}

// NewMIS binds the MIS pattern over eng's (symmetrized) graph. Call before
// Universe.Run.
func NewMIS(eng *pattern.Engine) *MIS {
	g := eng.Graph()
	m := &MIS{
		G:       g,
		State:   pmap.NewVertexWord(g.Dist(), misUndecided),
		prio:    pmap.NewVertexWord(g.Dist(), 0),
		blocked: pmap.NewVertexWord(g.Dist(), 0),
	}
	bound, err := eng.Bind(MISPattern(), pattern.Bindings{
		"prio": m.prio, "state": m.State, "blocked": m.blocked,
	})
	if err != nil {
		panic(fmt.Sprintf("algorithms: MIS bind: %v", err))
	}
	m.Block = bound.Action("block")
	m.Exclude = bound.Action("exclude")
	return m
}

// misPrio gives every vertex a deterministic pseudo-random priority with no
// ties: the low 22 bits are the vertex id itself, so priorities are unique
// for graphs up to 2^22 vertices (far beyond the simulated scales).
func misPrio(v distgraph.Vertex) int64 {
	x := uint64(v)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	x ^= x >> 33
	return int64((x%(1<<40))<<22) | int64(v&((1<<22)-1))
}

// Run computes the MIS. Collective.
func (m *MIS) Run(r *am.Rank) {
	g := m.G
	rid := r.ID()
	init := r.Phase(obs.PhaseBuildCSR)
	locals := LocalVertices(g, r)
	for _, v := range locals {
		m.State.Set(rid, v, misUndecided)
		m.prio.Set(rid, v, misPrio(v))
		m.blocked.Set(rid, v, 0)
	}
	init.End()
	r.Barrier()
	rounds := 0
	for {
		rounds++
		// Phase 1 (declarative): find blocked vertices.
		r.Epoch(func(ep *am.Epoch) {
			for _, v := range locals {
				if m.State.Get(rid, v) == misUndecided {
					m.Block.Invoke(r, v)
				}
			}
		})
		// Phase 2 (local): unblocked undecided vertices join the MIS.
		join := r.Phase(obs.PhaseEmit)
		joined := int64(0)
		for _, v := range locals {
			if m.State.Get(rid, v) == misUndecided && m.blocked.Get(rid, v) == 0 {
				m.State.Set(rid, v, misIn)
				joined++
			}
			m.blocked.Set(rid, v, 0)
		}
		join.End()
		// Phase 3 (declarative): new members exclude their neighbours.
		r.Epoch(func(ep *am.Epoch) {
			for _, v := range locals {
				if m.State.Get(rid, v) == misIn {
					m.Exclude.Invoke(r, v)
				}
			}
		})
		undecided := int64(0)
		for _, v := range locals {
			if m.State.Get(rid, v) == misUndecided {
				undecided++
			}
		}
		if r.AllReduceSum(undecided) == 0 {
			break
		}
		if rounds > 64 {
			panic("algorithms: MIS did not converge")
		}
	}
	if rid == 0 {
		m.Rounds = rounds
	}
	r.Barrier()
}
