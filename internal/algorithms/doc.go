// Package algorithms implements the paper's example algorithms on top of
// patterns and strategies — SSSP (§II-A) with the fixed_point, Δ-stepping,
// and distributed Δ-stepping strategies, and connected components (§II-B)
// via parallel search with conflict recording and pointer jumping — plus two
// further pattern-based algorithms (BFS levels and widest path) matching the
// paper's plan to "experiment with more algorithms to check if the current
// abstraction is powerful enough", and hand-written AM++ equivalents of SSSP
// and BFS used as abstraction-overhead baselines (experiment E9).
//
// Each algorithm is constructed before Universe.Run (pattern binding and
// work-hook installation register message types) and then executed SPMD via
// its Run method from every rank's body.
package algorithms
