package algorithms

import (
	"fmt"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/obs"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/strategy"
)

// SSSPPattern builds the paper's Fig. 2 pattern:
//
//	pattern SSSP {
//	  vertex-property(dist); edge-property(weight);
//	  relax(vertex v) {
//	    generator: e in out_edges;
//	    alias: d = dist[v] + weight[e];
//	    if (d < dist[trg(e)]) dist[trg(e)] = d;
//	  }
//	}
func SSSPPattern() *pattern.Pattern {
	p := pattern.New("SSSP")
	dist := p.VertexProp("dist")
	weight := p.EdgeProp("weight")
	relax := p.Action("relax", pattern.OutEdges())
	d := pattern.Add(dist.At(pattern.V()), weight.At(pattern.E()))
	relax.If(pattern.Lt(d, dist.At(pattern.Trg()))).Set(dist.At(pattern.Trg()), d)
	return p
}

// SSSPLightHeavyPattern builds the light/heavy variant of the relax pattern
// (§II-A's further Δ-stepping optimization): two actions over the same
// property maps, each guarding relaxation with an entry-local weight test
// that the planner's early-exit optimization evaluates before any message is
// sent.
func SSSPLightHeavyPattern(delta int64) *pattern.Pattern {
	p := pattern.New("SSSP-light-heavy")
	dist := p.VertexProp("dist")
	weight := p.EdgeProp("weight")
	build := func(name string, guard pattern.Expr) {
		a := p.Action(name, pattern.OutEdges())
		d := pattern.Add(dist.At(pattern.V()), weight.At(pattern.E()))
		a.If(pattern.And(guard, pattern.Lt(d, dist.At(pattern.Trg())))).
			Set(dist.At(pattern.Trg()), d)
	}
	build("relax_light", pattern.Lt(weight.At(pattern.E()), pattern.C(delta)))
	build("relax_heavy", pattern.Ge(weight.At(pattern.E()), pattern.C(delta)))
	return p
}

// SSSPMode selects the strategy applied to the relax action.
type SSSPMode int

const (
	// SSSPFixedPoint is the paper's fixed_point strategy (Fig. 1 right).
	SSSPFixedPoint SSSPMode = iota
	// SSSPDelta is Δ-stepping with per-rank buckets (Fig. 1 left).
	SSSPDelta
	// SSSPDeltaDistributed is the §III-D variant with per-thread local
	// buckets and try_finish.
	SSSPDeltaDistributed
	// SSSPDeltaLightHeavy splits light and heavy edges (§II-A).
	SSSPDeltaLightHeavy
)

// SSSP is a configured single-source shortest paths solver over patterns.
type SSSP struct {
	G    *distgraph.Graph
	Dist *pmap.VertexWord
	// Relax is the bound relax action (for stats and plan inspection).
	Relax *pattern.BoundAction

	eng    *pattern.Engine
	mode   SSSPMode
	fp     *strategy.FixedPoint
	delta  *strategy.Delta
	ddelta *strategy.DeltaDistributed
	lh     *strategy.DeltaLightHeavy
}

// NewSSSP binds the SSSP pattern over g with the given plan options. Must be
// called before Universe.Run. Configure the strategy with one of
// UseFixedPoint / UseDelta / UseDeltaDistributed / UseDeltaLightHeavy
// (default: fixed point).
func NewSSSP(eng *pattern.Engine, opts ...func(*SSSP)) *SSSP {
	g := eng.Graph()
	s := &SSSP{G: g, Dist: pmap.NewVertexWord(g.Dist(), pattern.Inf), eng: eng}
	bound, err := eng.Bind(SSSPPattern(), pattern.Bindings{
		"dist":   s.Dist,
		"weight": pmap.WeightMap(g),
	})
	if err != nil {
		panic(fmt.Sprintf("algorithms: SSSP bind: %v", err))
	}
	s.Relax = bound.Action("relax")
	s.fp = strategy.NewFixedPoint(s.Relax)
	eng.Universe().RegisterCheckpointer(s.Dist)
	for _, o := range opts {
		o(s)
	}
	return s
}

// UseFixedPoint selects the fixed_point strategy (the default).
func (s *SSSP) UseFixedPoint() *SSSP {
	s.mode = SSSPFixedPoint
	s.fp = strategy.NewFixedPoint(s.Relax)
	return s
}

// UseDelta selects the Δ-stepping strategy with bucket width delta.
func (s *SSSP) UseDelta(u *am.Universe, delta int64) *SSSP {
	s.mode = SSSPDelta
	s.delta = strategy.NewDelta(u, s.Relax, s.Dist, delta)
	return s
}

// UseDeltaDistributed selects distributed Δ-stepping with the given bucket
// width and body threads per rank.
func (s *SSSP) UseDeltaDistributed(u *am.Universe, delta int64, threads int) *SSSP {
	s.mode = SSSPDeltaDistributed
	s.ddelta = strategy.NewDeltaDistributed(u, s.Relax, s.Dist, delta, threads)
	return s
}

// UseDeltaLightHeavy selects Δ-stepping with the light/heavy edge split:
// binds the two-action pattern over the same distance map and installs the
// bucket hooks.
func (s *SSSP) UseDeltaLightHeavy(u *am.Universe, delta int64) *SSSP {
	s.mode = SSSPDeltaLightHeavy
	bound, err := s.eng.Bind(SSSPLightHeavyPattern(delta), pattern.Bindings{
		"dist":   s.Dist,
		"weight": pmap.WeightMap(s.G),
	})
	if err != nil {
		panic(fmt.Sprintf("algorithms: SSSP light/heavy bind: %v", err))
	}
	s.lh = strategy.NewDeltaLightHeavy(u, bound.Action("relax_light"), bound.Action("relax_heavy"), s.Dist, delta)
	return s
}

// BucketEpochs reports per-bucket epochs of the last Δ-stepping run (0 for
// fixed point).
func (s *SSSP) BucketEpochs() int {
	switch s.mode {
	case SSSPDelta:
		return s.delta.BucketEpochs
	case SSSPDeltaDistributed:
		return s.ddelta.BucketEpochs
	case SSSPDeltaLightHeavy:
		return s.lh.BucketEpochs
	}
	return 0
}

// RunBellmanFordRounds solves SSSP with synchronous relaxation rounds built
// from the `once` strategy (Fig. 1's iterative fixed-point algorithm run
// round-by-round): every round applies relax at every local vertex and the
// loop stops when a round changes nothing anywhere. Returns the number of
// rounds. Collective. The configured strategy is ignored.
func (s *SSSP) RunBellmanFordRounds(r *am.Rank, src distgraph.Vertex) int {
	ph := r.Phase(obs.PhaseCollect)
	s.Dist.ForEachLocal(r.ID(), func(v distgraph.Vertex, _ int64) {
		s.Dist.Set(r.ID(), v, pattern.Inf)
	})
	if s.G.Owner(src) == r.ID() {
		s.Dist.Set(r.ID(), src, 0)
	}
	ph.End()
	r.Barrier()
	locals := LocalVertices(s.G, r)
	rounds := 0
	for strategy.Once(r, s.Relax, locals) {
		rounds++
		if rounds > s.G.NumVertices()+1 {
			panic("algorithms: Bellman-Ford rounds did not converge")
		}
	}
	return rounds + 1
}

// ResetLocal resets this rank's slice of the distance map to unreached (∞).
// Rank-local; callers sequence their own barrier before relaxations can
// arrive. The query plane uses it to recycle a bound SSSP slot between fused
// batches without re-binding the pattern.
func (s *SSSP) ResetLocal(r *am.Rank) {
	s.Dist.ForEachLocal(r.ID(), func(v distgraph.Vertex, _ int64) {
		s.Dist.Set(r.ID(), v, pattern.Inf)
	})
}

// SeedLocal zeroes src's distance if this rank owns it, appending it to seeds
// (unchanged otherwise). Like BFS.SeedLocal, this is the fusion seam: the
// query plane seeds many sources across sibling slots and relaxes them all in
// one epoch sweep.
func (s *SSSP) SeedLocal(r *am.Rank, seeds []distgraph.Vertex, src distgraph.Vertex) []distgraph.Vertex {
	if s.G.Owner(src) == r.ID() {
		s.Dist.Set(r.ID(), src, 0)
		seeds = append(seeds, src)
	}
	return seeds
}

// InvokeSeeds applies the bound relax action to each seed; the caller must be
// inside a collective epoch (the query plane's fused sweep).
func (s *SSSP) InvokeSeeds(r *am.Rank, seeds []distgraph.Vertex) {
	for _, v := range seeds {
		s.Relax.Invoke(r, v)
	}
}

// Run solves SSSP from src. Collective: call from every rank's body. The
// distance map is reset (∞ everywhere, 0 at the source) on entry.
func (s *SSSP) Run(r *am.Rank, src distgraph.Vertex) {
	ph := r.Phase(obs.PhaseCollect)
	s.ResetLocal(r)
	seeds := s.SeedLocal(r, nil, src)
	ph.End()
	r.Barrier()
	switch s.mode {
	case SSSPFixedPoint:
		s.fp.Run(r, seeds)
	case SSSPDelta:
		s.delta.Run(r, seeds)
	case SSSPDeltaDistributed:
		s.ddelta.Run(r, seeds)
	case SSSPDeltaLightHeavy:
		s.lh.Run(r, seeds)
	}
}
