package algorithms

import (
	"testing"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/seq"
)

func newEngine(cfg am.Config, n int, edges []distgraph.Edge, gopts distgraph.Options) (*am.Universe, *pattern.Engine, *pmap.LockMap) {
	u := am.NewUniverse(cfg)
	dist := distgraph.NewBlockDist(n, cfg.Ranks)
	g := distgraph.Build(dist, edges, gopts)
	lm := pmap.NewLockMap(dist, 1)
	return u, pattern.NewEngine(u, g, lm, pattern.DefaultPlanOptions()), lm
}

func checkDist(t *testing.T, label string, got []int64, want []int64) {
	t.Helper()
	for v := range want {
		w := want[v]
		if w == seq.Inf {
			w = pattern.Inf
		}
		if got[v] != w {
			t.Fatalf("%s: value[%d] = %d, want %d", label, v, got[v], w)
		}
	}
}

func TestSSSPAllStrategies(t *testing.T) {
	n, edges := gen.RMAT(9, 8, gen.Weights{Min: 1, Max: 100}, 77)
	want := seq.Dijkstra(n, edges, 3)
	cases := []struct {
		name string
		cfg  am.Config
		mk   func(u *am.Universe, s *SSSP)
	}{
		{"fixed-point/1x0", am.Config{Ranks: 1, ThreadsPerRank: 0}, func(u *am.Universe, s *SSSP) { s.UseFixedPoint() }},
		{"fixed-point/4x2", am.Config{Ranks: 4, ThreadsPerRank: 2}, func(u *am.Universe, s *SSSP) { s.UseFixedPoint() }},
		{"delta/3x1", am.Config{Ranks: 3, ThreadsPerRank: 1}, func(u *am.Universe, s *SSSP) { s.UseDelta(u, 30) }},
		{"delta-dist/2x2", am.Config{Ranks: 2, ThreadsPerRank: 2}, func(u *am.Universe, s *SSSP) { s.UseDeltaDistributed(u, 30, 2) }},
		{"delta-dist/fourcounter", am.Config{Ranks: 2, ThreadsPerRank: 1, Detector: am.DetectorFourCounter}, func(u *am.Universe, s *SSSP) { s.UseDeltaDistributed(u, 50, 2) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u, eng, _ := newEngine(tc.cfg, n, edges, distgraph.Options{})
			s := NewSSSP(eng)
			tc.mk(u, s)
			u.Run(func(r *am.Rank) { s.Run(r, 3) })
			checkDist(t, tc.name, s.Dist.Gather(), want)
		})
	}
}

func TestSSSPRunTwice(t *testing.T) {
	// Run resets state: two runs from different sources in one universe.
	n, edges := gen.RMAT(7, 8, gen.Weights{Min: 1, Max: 9}, 5)
	u, eng, _ := newEngine(am.Config{Ranks: 2, ThreadsPerRank: 1}, n, edges, distgraph.Options{})
	s := NewSSSP(eng)
	var got0, got7 []int64
	u.Run(func(r *am.Rank) {
		s.Run(r, 0)
		r.Barrier()
		if r.ID() == 0 {
			got0 = s.Dist.Gather()
		}
		r.Barrier()
		s.Run(r, 7)
		r.Barrier()
		if r.ID() == 0 {
			got7 = s.Dist.Gather()
		}
		r.Barrier()
	})
	checkDist(t, "src0", got0, seq.Dijkstra(n, edges, 0))
	checkDist(t, "src7", got7, seq.Dijkstra(n, edges, 7))
}

func sameComponents(t *testing.T, label string, comp []int64, want []distgraph.Vertex) {
	t.Helper()
	// Partitions must agree: comp[a]==comp[b] iff want[a]==want[b].
	// Check via canonical representative maps.
	repr := map[int64]distgraph.Vertex{}
	back := map[distgraph.Vertex]int64{}
	for v := range comp {
		c, w := comp[v], want[v]
		if r, ok := repr[c]; ok {
			if r != w {
				t.Fatalf("%s: vertex %d: label %d maps to both %d and %d", label, v, c, r, w)
			}
		} else {
			repr[c] = w
		}
		if r, ok := back[w]; ok {
			if r != c {
				t.Fatalf("%s: vertex %d: class %d maps to both %d and %d", label, v, w, r, c)
			}
		} else {
			back[w] = c
		}
	}
}

func TestCCDisjointCycles(t *testing.T) {
	n, edges := gen.Components([]int{5, 1, 8, 3, 1}, 0)
	want := seq.Components(n, edges)
	for _, cfg := range []am.Config{
		{Ranks: 1, ThreadsPerRank: 0},
		{Ranks: 3, ThreadsPerRank: 2},
	} {
		u, eng, lm := newEngine(cfg, n, edges, distgraph.Options{Symmetrize: true})
		c := NewCC(eng, lm)
		u.Run(func(r *am.Rank) { c.Run(r) })
		sameComponents(t, "cycles", c.Comp.Gather(), want)
	}
}

func TestCCRandomGraphs(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		// Sparse ER graphs have many components.
		n := 256
		edges := gen.ER(n, 180, gen.Weights{}, seed)
		want := seq.Components(n, edges)
		u, eng, lm := newEngine(am.Config{Ranks: 4, ThreadsPerRank: 2}, n, edges, distgraph.Options{Symmetrize: true})
		c := NewCC(eng, lm)
		u.Run(func(r *am.Rank) { c.Run(r) })
		sameComponents(t, "er", c.Comp.Gather(), want)
	}
}

func TestCCFlushPacing(t *testing.T) {
	// Starting many searches before flushing (large FlushEvery) must
	// still be correct, just with more conflicts (E3's axis).
	n, edges := gen.RMAT(8, 4, gen.Weights{}, 13)
	want := seq.Components(n, edges)
	var conflictsSerial, conflictsBulk int64
	for _, fe := range []int{1, 1 << 30} {
		u, eng, lm := newEngine(am.Config{Ranks: 3, ThreadsPerRank: 1}, n, edges, distgraph.Options{Symmetrize: true})
		c := NewCC(eng, lm)
		c.FlushEvery = fe
		u.Run(func(r *am.Rank) { c.Run(r) })
		sameComponents(t, "pacing", c.Comp.Gather(), want)
		// Conflict volume proxy: elif branch executions.
		trues := c.Search.Stats.TestsTrue.Load()
		if fe == 1 {
			conflictsSerial = trues
		} else {
			conflictsBulk = trues
		}
	}
	_ = conflictsSerial
	_ = conflictsBulk // shapes vary; correctness is the assertion here
}

func TestCCSingleComponent(t *testing.T) {
	n, edges := gen.Torus2D(8, 8, gen.Weights{}, 0)
	u, eng, lm := newEngine(am.Config{Ranks: 2, ThreadsPerRank: 2}, n, edges, distgraph.Options{Symmetrize: true})
	c := NewCC(eng, lm)
	u.Run(func(r *am.Rank) { c.Run(r) })
	comp := c.Comp.Gather()
	for v := range comp {
		if comp[v] != comp[0] {
			t.Fatalf("torus must be one component; comp[%d]=%d comp[0]=%d", v, comp[v], comp[0])
		}
	}
}

func TestBFSMatchesSequential(t *testing.T) {
	n, edges := gen.RMAT(8, 8, gen.Weights{Min: 1, Max: 5}, 3)
	want := seq.BFS(n, edges, 0)
	u, eng, _ := newEngine(am.Config{Ranks: 3, ThreadsPerRank: 1}, n, edges, distgraph.Options{})
	b := NewBFS(eng)
	u.Run(func(r *am.Rank) { b.Run(r, 0) })
	checkDist(t, "bfs", b.Level.Gather(), want)
	// The BFS pattern compiles to the same single-message atomic-min plan
	// as SSSP (pattern reuse).
	pi := b.Visit.PlanInfo()
	if pi.Conds[0].Messages != 1 || pi.Conds[0].Sync != "atomic-min" {
		t.Errorf("BFS plan: %+v", pi.Conds[0])
	}
}

func TestWidestMatchesSequential(t *testing.T) {
	n, edges := gen.RMAT(8, 8, gen.Weights{Min: 1, Max: 50}, 19)
	wantRaw := seq.WidestPath(n, edges, 0)
	u, eng, _ := newEngine(am.Config{Ranks: 3, ThreadsPerRank: 1}, n, edges, distgraph.Options{})
	w := NewWidest(eng)
	u.Run(func(r *am.Rank) { w.Run(r, 0) })
	got := w.Cap.Gather()
	for v := range wantRaw {
		want := wantRaw[v]
		if want == seq.Inf {
			want = pattern.Inf
		}
		if got[v] != want {
			t.Fatalf("cap[%d] = %d, want %d", v, got[v], want)
		}
	}
	if w.Widen.PlanInfo().Conds[0].Sync != "atomic-max" {
		t.Errorf("widest plan sync: %s", w.Widen.PlanInfo().Conds[0].Sync)
	}
}

func TestHandWrittenBaselines(t *testing.T) {
	n, edges := gen.RMAT(8, 8, gen.Weights{Min: 1, Max: 40}, 23)
	wantD := seq.Dijkstra(n, edges, 0)
	wantB := seq.BFS(n, edges, 0)
	u := am.NewUniverse(am.Config{Ranks: 3, ThreadsPerRank: 2})
	dist := distgraph.NewBlockDist(n, 3)
	g := distgraph.Build(dist, edges, distgraph.Options{})
	hs := NewHandSSSP(u, g).WithReductionCache()
	hb := NewHandBFS(u, g)
	u.Run(func(r *am.Rank) {
		hs.Run(r, 0)
		hb.Run(r, 0)
	})
	checkDist(t, "hand-sssp", hs.Dist.Gather(), wantD)
	checkDist(t, "hand-bfs", hb.Level.Gather(), wantB)
	if u.Stats.MsgsSuppressed() == 0 {
		t.Error("reduction cache suppressed nothing on an RMAT graph")
	}
}

// TestPatternVsHandSameResults cross-checks engine and hand-written SSSP in
// the same universe on the same graph (E9's correctness leg).
func TestPatternVsHandSameResults(t *testing.T) {
	n, edges := gen.RMAT(8, 8, gen.Weights{Min: 1, Max: 30}, 31)
	u, eng, _ := newEngine(am.Config{Ranks: 2, ThreadsPerRank: 2}, n, edges, distgraph.Options{})
	s := NewSSSP(eng)
	h := NewHandSSSP(u, eng.Graph())
	u.Run(func(r *am.Rank) {
		s.Run(r, 0)
		h.Run(r, 0)
	})
	sd, hd := s.Dist.Gather(), h.Dist.Gather()
	for v := range sd {
		if sd[v] != hd[v] {
			t.Fatalf("dist[%d]: pattern=%d hand=%d", v, sd[v], hd[v])
		}
	}
}
