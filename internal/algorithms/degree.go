package algorithms

import (
	"fmt"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/obs"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
)

// DegreePattern counts in-degrees by scattering over out-edges: an
// unconditional modification with a remote atomic add (the §IV-B
// single-value atomic case for accumulation).
//
//	count(vertex v) {
//	  generator: e in out_edges;
//	  indeg[trg(e)] += 1;
//	}
func DegreePattern() *pattern.Pattern {
	p := pattern.New("Degree")
	indeg := p.VertexProp("indeg")
	count := p.Action("count", pattern.OutEdges())
	count.Do().AddTo(indeg.At(pattern.Trg()), pattern.C(1))
	return p
}

// DegreeCount computes every vertex's in-degree.
type DegreeCount struct {
	G     *distgraph.Graph
	InDeg *pmap.VertexWord
	Count *pattern.BoundAction
}

// NewDegreeCount binds the degree pattern over eng's graph. Call before
// Universe.Run.
func NewDegreeCount(eng *pattern.Engine) *DegreeCount {
	g := eng.Graph()
	d := &DegreeCount{G: g, InDeg: pmap.NewVertexWord(g.Dist(), 0)}
	bound, err := eng.Bind(DegreePattern(), pattern.Bindings{"indeg": d.InDeg})
	if err != nil {
		panic(fmt.Sprintf("algorithms: Degree bind: %v", err))
	}
	d.Count = bound.Action("count")
	return d
}

// Run counts in-degrees. Collective.
func (d *DegreeCount) Run(r *am.Rank) {
	ph := r.Phase(obs.PhaseCollect)
	d.InDeg.ForEachLocal(r.ID(), func(v distgraph.Vertex, _ int64) {
		d.InDeg.Set(r.ID(), v, 0)
	})
	ph.End()
	r.Barrier()
	r.Epoch(func(ep *am.Epoch) {
		ph := r.Phase(obs.PhaseCollect)
		for _, v := range LocalVertices(d.G, r) {
			d.Count.Invoke(r, v)
		}
		ph.End()
	})
}
