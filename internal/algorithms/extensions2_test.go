package algorithms

import (
	"math"
	"testing"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/seq"
)

// seqPageRank is a float64 reference implementation matching the
// fixed-point solver's update rule.
func seqPageRank(n int, edges []distgraph.Edge, damping float64, iters int) []float64 {
	outdeg := make([]int, n)
	for _, e := range edges {
		outdeg[e.Src]++
	}
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		dangling := 0.0
		for v := 0; v < n; v++ {
			if outdeg[v] == 0 {
				dangling += rank[v]
			}
		}
		for _, e := range edges {
			next[e.Dst] += damping * rank[e.Src] / float64(outdeg[e.Src])
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for v := 0; v < n; v++ {
			rank[v] = next[v] + base
		}
	}
	return rank
}

func TestPageRankPushMatchesReference(t *testing.T) {
	n, edges := gen.RMAT(8, 8, gen.Weights{}, 61)
	const iters = 20
	want := seqPageRank(n, edges, 0.85, iters)
	for _, cfg := range []am.Config{{Ranks: 1, ThreadsPerRank: 0}, {Ranks: 4, ThreadsPerRank: 2}} {
		u, eng, _ := newEngine(cfg, n, edges, distgraph.Options{})
		pr := NewPageRank(eng, PageRankPush)
		pr.MaxIters = iters
		pr.Tolerance = 0 // run all iterations like the reference
		u.Run(func(r *am.Rank) { pr.Run(r) })
		got := pr.Rank.Gather()
		for v := range want {
			gf := float64(got[v]) / float64(PRScale)
			if math.Abs(gf-want[v]) > 1e-5 {
				t.Fatalf("cfg %+v: rank[%d] = %g, want %g", cfg, v, gf, want[v])
			}
		}
	}
}

func TestPageRankPullMatchesPush(t *testing.T) {
	n, edges := gen.RMAT(8, 8, gen.Weights{}, 62)
	const iters = 15
	run := func(mode PageRankMode, gopts distgraph.Options) []int64 {
		u, eng, _ := newEngine(am.Config{Ranks: 3, ThreadsPerRank: 1}, n, edges, gopts)
		pr := NewPageRank(eng, mode)
		pr.MaxIters = iters
		pr.Tolerance = 0
		u.Run(func(r *am.Rank) { pr.Run(r) })
		return pr.Rank.Gather()
	}
	push := run(PageRankPush, distgraph.Options{})
	pull := run(PageRankPull, distgraph.Options{Bidirectional: true})
	for v := range push {
		if push[v] != pull[v] {
			t.Fatalf("rank[%d]: push=%d pull=%d", v, push[v], pull[v])
		}
	}
}

// TestPageRankPlanShapes: push is one message per edge (atomic add at trg);
// pull is a two-hop gather over in-edges.
func TestPageRankPlanShapes(t *testing.T) {
	n, edges := gen.Torus2D(4, 4, gen.Weights{}, 0)
	_, eng, _ := newEngine(am.Config{Ranks: 1}, n, edges, distgraph.Options{Bidirectional: true})
	push := NewPageRank(eng, PageRankPush)
	pull := NewPageRank(eng, PageRankPull)
	pc := push.Action.PlanInfo().Conds[0]
	if pc.Messages != 1 || pc.Sync != "atomic-add" {
		t.Errorf("push plan: %+v", pc)
	}
	gc := pull.Action.PlanInfo().Conds[0]
	if gc.Messages != 2 {
		t.Errorf("pull plan should be a two-hop gather: %+v", gc)
	}
}

// seqKCore peels iteratively on the symmetrized graph.
func seqKCore(n int, edges []distgraph.Edge, k int64) []bool {
	deg := make([]int64, n)
	adj := make([][]distgraph.Vertex, n)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
		deg[e.Src]++
		deg[e.Dst]++
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	queue := []distgraph.Vertex{}
	for v := 0; v < n; v++ {
		if deg[v] < k {
			alive[v] = false
			queue = append(queue, distgraph.Vertex(v))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			deg[u]--
			if alive[u] && deg[u] < k {
				alive[u] = false
				queue = append(queue, u)
			}
		}
	}
	return alive
}

func TestKCoreMatchesSequential(t *testing.T) {
	n, edges := gen.RMAT(8, 6, gen.Weights{}, 71)
	for _, k := range []int64{2, 4, 8} {
		want := seqKCore(n, edges, k)
		for _, cfg := range []am.Config{{Ranks: 1, ThreadsPerRank: 0}, {Ranks: 4, ThreadsPerRank: 2}} {
			u, eng, _ := newEngine(cfg, n, edges, distgraph.Options{Symmetrize: true})
			kc := NewKCore(eng, k)
			u.Run(func(r *am.Rank) { kc.Run(r) })
			got := kc.Alive.Gather()
			for v := range want {
				if (got[v] == 1) != want[v] {
					t.Fatalf("k=%d cfg %+v: alive[%d]=%d want %v", k, cfg, v, got[v], want[v])
				}
			}
		}
	}
}

func TestKCoreChainedWorkHooks(t *testing.T) {
	// A path graph has no 2-core: everything peels away through chained
	// check->notify->check work items.
	n := 32
	edges := gen.Path(n, gen.Weights{}, 0)
	u, eng, _ := newEngine(am.Config{Ranks: 2, ThreadsPerRank: 1}, n, edges, distgraph.Options{Symmetrize: true})
	kc := NewKCore(eng, 2)
	u.Run(func(r *am.Rank) { kc.Run(r) })
	for v, a := range kc.Alive.Gather() {
		if a != 0 {
			t.Fatalf("alive[%d]=%d on a path (no 2-core)", v, a)
		}
	}
	if kc.Notify.Stats.Invocations.Load() == 0 {
		t.Error("notify was never chained from check")
	}
	// A cycle IS its own 2-core: nothing peels.
	n2, edges2 := gen.Components([]int{16}, 0)
	u2, eng2, _ := newEngine(am.Config{Ranks: 2, ThreadsPerRank: 1}, n2, edges2, distgraph.Options{Symmetrize: true})
	kc2 := NewKCore(eng2, 2)
	u2.Run(func(r *am.Rank) { kc2.Run(r) })
	for v, a := range kc2.Alive.Gather() {
		if a != 1 {
			t.Fatalf("cycle vertex %d peeled from its own 2-core", v)
		}
	}
}

func TestBFSTreeValid(t *testing.T) {
	n, edges := gen.RMAT(9, 8, gen.Weights{}, 81)
	depths := seq.BFS(n, edges, 0)
	reachable := make([]bool, n)
	for v := range depths {
		reachable[v] = depths[v] != seq.Inf
	}
	for _, cfg := range []am.Config{{Ranks: 1, ThreadsPerRank: 0}, {Ranks: 4, ThreadsPerRank: 2}} {
		u, eng, _ := newEngine(cfg, n, edges, distgraph.Options{})
		b := NewBFSTree(eng)
		u.Run(func(r *am.Rank) { b.Run(r, 0) })
		if err := ValidateTree(n, edges, 0, b.Parent.Gather(), reachable); err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
	}
}

func TestValidateTreeRejectsBadTrees(t *testing.T) {
	edges := []distgraph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}
	reachable := []bool{true, true, true}
	// Parent edge not in graph.
	if err := ValidateTree(3, edges, 0, []int64{0, 0, 0}, reachable); err == nil {
		t.Error("accepted tree edge 0->2 not in graph")
	}
	// Missing parent for a reachable vertex.
	if err := ValidateTree(3, edges, 0, []int64{0, 0, -1}, reachable); err == nil {
		t.Error("accepted missing parent")
	}
	// Valid tree passes.
	if err := ValidateTree(3, edges, 0, []int64{0, 0, 1}, reachable); err != nil {
		t.Errorf("rejected valid tree: %v", err)
	}
	// Cycle between 1 and 2 (parent edges exist in a symmetric graph).
	edges2 := []distgraph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 1}}
	if err := ValidateTree(3, edges2, 0, []int64{0, 2, 1}, reachable); err == nil {
		t.Error("accepted cyclic parents")
	}
}
