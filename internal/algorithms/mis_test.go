package algorithms

import (
	"testing"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/seq"
)

// checkMIS verifies independence and maximality against the edge list.
func checkMIS(t *testing.T, label string, state []int64, n int, edges []distgraph.Edge) {
	t.Helper()
	adj := make([][]distgraph.Vertex, n)
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
	}
	for v := 0; v < n; v++ {
		switch state[v] {
		case misIn:
			for _, u := range adj[v] {
				if state[u] == misIn {
					t.Fatalf("%s: adjacent MIS members %d and %d", label, v, u)
				}
			}
		case misOut:
			hasMISNeighbour := false
			for _, u := range adj[v] {
				if state[u] == misIn {
					hasMISNeighbour = true
					break
				}
			}
			if !hasMISNeighbour {
				t.Fatalf("%s: excluded vertex %d has no MIS neighbour (not maximal)", label, v)
			}
		default:
			t.Fatalf("%s: vertex %d undecided after Run", label, v)
		}
	}
}

func TestMISCorrect(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		n := 256
		edges := gen.ER(n, 1000, gen.Weights{}, seed)
		// Drop self-loops for a clean MIS instance.
		var clean []distgraph.Edge
		for _, e := range edges {
			if e.Src != e.Dst {
				clean = append(clean, e)
			}
		}
		for _, cfg := range []am.Config{
			{Ranks: 1, ThreadsPerRank: 0},
			{Ranks: 4, ThreadsPerRank: 2},
		} {
			u, eng, _ := newEngine(cfg, n, clean, distgraph.Options{Symmetrize: true})
			m := NewMIS(eng)
			u.Run(func(r *am.Rank) { m.Run(r) })
			checkMIS(t, "er", m.State.Gather(), n, clean)
		}
	}
}

func TestMISDeterministic(t *testing.T) {
	n, edges := gen.Torus2D(8, 8, gen.Weights{}, 0)
	run := func(ranks int) []int64 {
		u, eng, _ := newEngine(am.Config{Ranks: ranks, ThreadsPerRank: 2}, n, edges, distgraph.Options{Symmetrize: true})
		m := NewMIS(eng)
		u.Run(func(r *am.Rank) { m.Run(r) })
		return m.State.Gather()
	}
	a, b := run(1), run(4)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("state[%d] differs across machine shapes: %d vs %d", v, a[v], b[v])
		}
	}
}

func TestMISRoundsLogarithmic(t *testing.T) {
	n, edges := gen.RMAT(10, 8, gen.Weights{}, 5)
	var clean []distgraph.Edge
	for _, e := range edges {
		if e.Src != e.Dst {
			clean = append(clean, e)
		}
	}
	u, eng, _ := newEngine(am.Config{Ranks: 2, ThreadsPerRank: 2}, n, clean, distgraph.Options{Symmetrize: true})
	m := NewMIS(eng)
	u.Run(func(r *am.Rank) { m.Run(r) })
	checkMIS(t, "rmat", m.State.Gather(), n, clean)
	if m.Rounds > 20 {
		t.Fatalf("MIS took %d rounds on 1024 vertices", m.Rounds)
	}
}

func TestBellmanFordRounds(t *testing.T) {
	n, edges := gen.RMAT(8, 8, gen.Weights{Min: 1, Max: 40}, 15)
	want := seq.Dijkstra(n, edges, 0)
	wantDist, seqPasses := seq.BellmanFord(n, edges, 0)
	_ = wantDist
	u, eng, _ := newEngine(am.Config{Ranks: 3, ThreadsPerRank: 1}, n, edges, distgraph.Options{})
	s := NewSSSP(eng)
	var rounds [3]int
	u.Run(func(r *am.Rank) {
		rounds[r.ID()] = s.RunBellmanFordRounds(r, 0)
	})
	checkDist(t, "bellman-ford", s.Dist.Gather(), want)
	// All ranks agree on the round count; in-round propagation can only
	// reduce it below the sequential pass count.
	if rounds[0] != rounds[1] || rounds[1] != rounds[2] {
		t.Fatalf("round counts disagree: %v", rounds)
	}
	if rounds[0] < 2 || rounds[0] > seqPasses+1 {
		t.Fatalf("rounds = %d, sequential passes = %d", rounds[0], seqPasses)
	}
}
