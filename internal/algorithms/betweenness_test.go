package algorithms

import (
	"math"
	"testing"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/seq"
)

func checkBC(t *testing.T, label string, got []int64, want []float64) {
	t.Helper()
	for v := range want {
		g := float64(got[v]) / float64(BCScale)
		tol := 1e-3 * (1 + math.Abs(want[v]))
		if math.Abs(g-want[v]) > tol {
			t.Fatalf("%s: bc[%d] = %g, want %g", label, v, g, want[v])
		}
	}
}

func TestBetweennessTorus(t *testing.T) {
	n, edges := gen.Torus2D(5, 5, gen.Weights{}, 0)
	sources := []distgraph.Vertex{0, 7, 13}
	want := seq.Betweenness(n, edges, sources)
	for _, cfg := range []am.Config{
		{Ranks: 1, ThreadsPerRank: 0},
		{Ranks: 3, ThreadsPerRank: 2},
	} {
		u, eng, _ := newEngine(cfg, n, edges, distgraph.Options{Bidirectional: true})
		b := NewBetweenness(eng)
		u.Run(func(r *am.Rank) { b.Run(r, sources) })
		checkBC(t, "torus", b.BC.Gather(), want)
	}
}

func TestBetweennessRandom(t *testing.T) {
	for seed := uint64(1); seed <= 2; seed++ {
		n := 48
		edges := gen.ER(n, 150, gen.Weights{}, seed)
		sources := []distgraph.Vertex{0, 5, 11, 23}
		want := seq.Betweenness(n, edges, sources)
		u, eng, _ := newEngine(am.Config{Ranks: 2, ThreadsPerRank: 2}, n, edges, distgraph.Options{Bidirectional: true})
		b := NewBetweenness(eng)
		u.Run(func(r *am.Rank) { b.Run(r, sources) })
		checkBC(t, "er", b.BC.Gather(), want)
	}
}

func TestBetweennessPath(t *testing.T) {
	// On a directed path 0→1→2→3→4 from source 0, interior vertex k has
	// dependency (number of targets beyond it): bc[1]=3, bc[2]=2, bc[3]=1.
	n := 5
	edges := gen.Path(n, gen.Weights{}, 0)
	u, eng, _ := newEngine(am.Config{Ranks: 2, ThreadsPerRank: 1}, n, edges, distgraph.Options{Bidirectional: true})
	b := NewBetweenness(eng)
	u.Run(func(r *am.Rank) { b.Run(r, []distgraph.Vertex{0}) })
	got := b.BC.Gather()
	wantExact := []int64{0, 3 * BCScale, 2 * BCScale, 1 * BCScale, 0}
	for v := range wantExact {
		if got[v] != wantExact[v] {
			t.Fatalf("bc[%d] = %d, want %d", v, got[v], wantExact[v])
		}
	}
}

func TestBetweennessRequiresBidirectional(t *testing.T) {
	n := 4
	edges := gen.Path(n, gen.Weights{}, 0)
	_, eng, _ := newEngine(am.Config{Ranks: 1}, n, edges, distgraph.Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-bidirectional graph")
		}
	}()
	NewBetweenness(eng)
}
