package algorithms

import (
	"fmt"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/obs"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
)

// KCorePattern builds a k-core peeling pattern: two actions chained through
// their work hooks (the abstract's "chaining patterns in an arbitrary way").
//
//	check(vertex v) {                 // dies when degree drops below k
//	  if (alive[v] == 1 && deg[v] < k) alive[v] = 0;
//	}
//	notify(vertex v) {                // a death decrements neighbours
//	  generator: u in adj;
//	  deg[u] += -1;
//	}
//
// The strategy wires check's dependency (alive changed) to invoke notify at
// the dead vertex, and notify's dependency (deg changed) to re-invoke check
// at the neighbour — a fixed point across two patterns.
func KCorePattern(k int64) *pattern.Pattern {
	p := pattern.New(fmt.Sprintf("KCore-%d", k))
	alive := p.VertexProp("alive")
	deg := p.VertexProp("deg")

	check := p.Action("check", pattern.None())
	check.If(pattern.And(
		pattern.Eq(alive.At(pattern.V()), pattern.C(1)),
		pattern.Lt(deg.At(pattern.V()), pattern.C(k)),
	)).Set(alive.At(pattern.V()), pattern.C(0))

	notify := p.Action("notify", pattern.Adj())
	notify.Do().AddTo(deg.At(pattern.U()), pattern.C(-1))
	return p
}

// KCore computes the k-core of an undirected (symmetrized) graph: the
// maximal subgraph in which every vertex has degree >= k. Alive[v] == 1
// after Run iff v is in the k-core.
type KCore struct {
	G     *distgraph.Graph
	K     int64
	Alive *pmap.VertexWord
	Deg   *pmap.VertexWord

	Check, Notify *pattern.BoundAction
}

// NewKCore binds the k-core pattern over eng's (symmetrized) graph and
// chains the two actions' work hooks. Call before Universe.Run.
func NewKCore(eng *pattern.Engine, k int64) *KCore {
	g := eng.Graph()
	kc := &KCore{
		G: g, K: k,
		Alive: pmap.NewVertexWord(g.Dist(), 1),
		Deg:   pmap.NewVertexWord(g.Dist(), 0),
	}
	bound, err := eng.Bind(KCorePattern(k), pattern.Bindings{
		"alive": kc.Alive, "deg": kc.Deg,
	})
	if err != nil {
		panic(fmt.Sprintf("algorithms: KCore bind: %v", err))
	}
	kc.Check = bound.Action("check")
	kc.Notify = bound.Action("notify")
	kc.Check.SetWork(func(r *am.Rank, v distgraph.Vertex) { kc.Notify.InvokeAsync(r, v) })
	kc.Notify.SetWork(func(r *am.Rank, v distgraph.Vertex) { kc.Check.InvokeAsync(r, v) })
	return kc
}

// Run peels to the k-core. Collective.
func (kc *KCore) Run(r *am.Rank) {
	rid := r.ID()
	ph := r.Phase(obs.PhaseBuildCSR)
	locals := LocalVertices(kc.G, r)
	for _, v := range locals {
		kc.Alive.Set(rid, v, 1)
		kc.Deg.Set(rid, v, int64(kc.G.OutDegree(rid, v)))
	}
	ph.End()
	r.Barrier()
	r.Epoch(func(ep *am.Epoch) {
		ph := r.Phase(obs.PhaseCollect)
		for _, v := range locals {
			kc.Check.Invoke(r, v)
		}
		ph.End()
	})
}
