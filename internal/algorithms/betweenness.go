package algorithms

import (
	"fmt"
	"sync"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/obs"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
)

// BCScale is the fixed-point scale of betweenness dependency values.
const BCScale = int64(1) << 20

// BetweennessPattern builds the three actions of Brandes' algorithm over
// unweighted shortest paths — a staged algorithm where the imperative
// driver sequences level-synchronous epochs over declarative per-edge
// actions:
//
//	claim(vertex v) {                 // forward BFS level expansion
//	  generator: e in out_edges;
//	  if (depth[trg(e)] == INF) depth[trg(e)] = depth[v] + 1;
//	}
//	count(vertex v) {                 // shortest-path counting per level
//	  generator: e in out_edges;
//	  if (depth[trg(e)] == depth[v] + 1) sigma[trg(e)] += sigma[v];
//	}
//	accumulate(vertex v) {            // backward dependency accumulation
//	  generator: e in in_edges;
//	  if (depth[src(e)] == depth[v] - 1)
//	    delta[src(e)] += sigma[src(e)] * (SCALE + delta[v]) / sigma[v];
//	}
//
// accumulate modifies at the *source* of an in-edge: the plan gathers the
// entry-local values and evaluates at src(e), reading sigma and depth there
// under the merge synchronization — one message per tree edge.
func BetweennessPattern() *pattern.Pattern {
	p := pattern.New("Brandes")
	depth := p.VertexProp("depth")
	sigma := p.VertexProp("sigma")
	delta := p.VertexProp("delta")

	claim := p.Action("claim", pattern.OutEdges())
	claim.If(pattern.Eq(depth.At(pattern.Trg()), pattern.C(pattern.Inf))).
		Set(depth.At(pattern.Trg()), pattern.Add(depth.At(pattern.V()), pattern.C(1)))

	count := p.Action("count", pattern.OutEdges())
	count.If(pattern.Eq(depth.At(pattern.Trg()), pattern.Add(depth.At(pattern.V()), pattern.C(1)))).
		AddTo(sigma.At(pattern.Trg()), sigma.At(pattern.V()))

	acc := p.Action("accumulate", pattern.InEdges())
	acc.If(pattern.Eq(depth.At(pattern.Src()), pattern.Sub(depth.At(pattern.V()), pattern.C(1)))).
		AddTo(delta.At(pattern.Src()),
			pattern.Div(
				pattern.Mul(sigma.At(pattern.Src()), pattern.Add(pattern.C(BCScale), delta.At(pattern.V()))),
				sigma.At(pattern.V())))

	return p
}

// Betweenness computes unnormalized betweenness centrality from a set of
// sources (exact Brandes when sources = all vertices; approximate
// otherwise). The graph must be bidirectional. Values are fixed-point with
// scale BCScale; sigma path counts must stay below 2^40 for the scaled
// arithmetic to be exact (comfortably true at simulated scales).
type Betweenness struct {
	G *distgraph.Graph
	// BC[v] accumulates scaled dependency scores across sources.
	BC *pmap.VertexWord

	depth, sigma, delta *pmap.VertexWord
	Claim, Count, Acc   *pattern.BoundAction

	mu   sync.Mutex
	next map[int][]distgraph.Vertex // per-rank next frontier
}

// NewBetweenness binds the Brandes pattern over eng's bidirectional graph.
// Call before Universe.Run.
func NewBetweenness(eng *pattern.Engine) *Betweenness {
	g := eng.Graph()
	if !g.Options().Bidirectional {
		panic("algorithms: Betweenness requires a bidirectional graph")
	}
	b := &Betweenness{
		G:     g,
		BC:    pmap.NewVertexWord(g.Dist(), 0),
		depth: pmap.NewVertexWord(g.Dist(), pattern.Inf),
		sigma: pmap.NewVertexWord(g.Dist(), 0),
		delta: pmap.NewVertexWord(g.Dist(), 0),
		next:  map[int][]distgraph.Vertex{},
	}
	bound, err := eng.Bind(BetweennessPattern(), pattern.Bindings{
		"depth": b.depth, "sigma": b.sigma, "delta": b.delta,
	})
	if err != nil {
		panic(fmt.Sprintf("algorithms: Betweenness bind: %v", err))
	}
	b.Claim = bound.Action("claim")
	b.Count = bound.Action("count")
	b.Acc = bound.Action("accumulate")
	// Claim dependencies deliver the next BFS frontier to its owner rank.
	b.Claim.SetWork(func(r *am.Rank, v distgraph.Vertex) {
		b.mu.Lock()
		b.next[r.ID()] = append(b.next[r.ID()], v)
		b.mu.Unlock()
	})
	return b
}

// Run accumulates dependency scores from every source in sources.
// Collective; every rank must pass the same source list.
func (b *Betweenness) Run(r *am.Rank, sources []distgraph.Vertex) {
	g := b.G
	rid := r.ID()
	locals := LocalVertices(g, r)
	b.BC.ForEachLocal(rid, func(v distgraph.Vertex, _ int64) { b.BC.Set(rid, v, 0) })
	r.Barrier()

	for _, s := range sources {
		// Per-source reset.
		ph := r.Phase(obs.PhaseCollect)
		for _, v := range locals {
			b.depth.Set(rid, v, pattern.Inf)
			b.sigma.Set(rid, v, 0)
			b.delta.Set(rid, v, 0)
		}
		var frontier []distgraph.Vertex
		if g.Owner(s) == rid {
			b.depth.Set(rid, s, 0)
			b.sigma.Set(rid, s, 1)
			frontier = []distgraph.Vertex{s}
		}
		ph.End()
		r.Barrier()

		// Forward: level-synchronous claim + count epochs.
		levels := [][]distgraph.Vertex{}
		for {
			sz := r.AllReduceSum(int64(len(frontier)))
			if sz == 0 {
				break
			}
			levels = append(levels, frontier)
			b.mu.Lock()
			b.next[rid] = nil
			b.mu.Unlock()
			r.Epoch(func(ep *am.Epoch) {
				for _, v := range frontier {
					b.Claim.Invoke(r, v)
				}
			})
			r.Epoch(func(ep *am.Epoch) {
				for _, v := range frontier {
					b.Count.Invoke(r, v)
				}
			})
			b.mu.Lock()
			frontier = b.next[rid]
			b.mu.Unlock()
		}

		// Backward: dependency accumulation from the deepest level.
		maxLevel := r.AllReduceMax(int64(len(levels) - 1))
		for l := maxLevel; l >= 1; l-- {
			var lv []distgraph.Vertex
			if int(l) < len(levels) {
				lv = levels[l]
			}
			r.Epoch(func(ep *am.Epoch) {
				for _, v := range lv {
					b.Acc.Invoke(r, v)
				}
			})
		}

		// Fold this source's dependencies into BC.
		fold := r.Phase(obs.PhaseEmit)
		for _, v := range locals {
			if v != s && b.depth.Get(rid, v) != pattern.Inf {
				b.BC.Add(rid, v, b.delta.Get(rid, v))
			}
		}
		fold.End()
		r.Barrier()
	}
}
