package algorithms

import (
	"testing"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/seq"
)

// TestAlgorithmsAcrossDistributions runs SSSP and CC under every
// distribution kind: object-based addressing must be correct regardless of
// how vertices map to ranks (block, cyclic, hashed).
func TestAlgorithmsAcrossDistributions(t *testing.T) {
	n, edges := gen.RMAT(8, 8, gen.Weights{Min: 1, Max: 50}, 201)
	wantD := seq.Dijkstra(n, edges, 0)
	wantC := seq.Components(n, edges)
	dists := map[string]func(ranks int) distgraph.Distribution{
		"block":  func(r int) distgraph.Distribution { return distgraph.NewBlockDist(n, r) },
		"cyclic": func(r int) distgraph.Distribution { return distgraph.NewCyclicDist(n, r) },
		"hash":   func(r int) distgraph.Distribution { return distgraph.NewHashDist(n, r, 5) },
	}
	for name, mk := range dists {
		t.Run(name, func(t *testing.T) {
			const ranks = 4
			{
				u := am.NewUniverse(am.Config{Ranks: ranks, ThreadsPerRank: 2})
				d := mk(ranks)
				g := distgraph.Build(d, edges, distgraph.Options{})
				eng := pattern.NewEngine(u, g, pmap.NewLockMap(d, 1), pattern.DefaultPlanOptions())
				s := NewSSSP(eng)
				u.Run(func(r *am.Rank) { s.Run(r, 0) })
				checkDist(t, name+"/sssp", s.Dist.Gather(), wantD)
			}
			{
				u := am.NewUniverse(am.Config{Ranks: ranks, ThreadsPerRank: 2})
				d := mk(ranks)
				g := distgraph.Build(d, edges, distgraph.Options{Symmetrize: true})
				lm := pmap.NewLockMap(d, 1)
				eng := pattern.NewEngine(u, g, lm, pattern.DefaultPlanOptions())
				c := NewCC(eng, lm)
				c.FlushEvery = 8
				u.Run(func(r *am.Rank) { c.Run(r) })
				sameComponents(t, name+"/cc", c.Comp.Gather(), wantC)
			}
		})
	}
}

// TestSSSPDialAlias: Δ-stepping with Δ=1 on integer weights is Dial's
// label-setting algorithm — the §II-A label-setting end of the spectrum —
// and must settle each distance class exactly once (bucket epochs ≈ the
// largest finite distance / 1).
func TestSSSPDialLabelSetting(t *testing.T) {
	n, edges := gen.Torus2D(12, 12, gen.Weights{Min: 1, Max: 3}, 2)
	want := seq.Dijkstra(n, edges, 0)
	u := am.NewUniverse(am.Config{Ranks: 2, ThreadsPerRank: 1})
	d := distgraph.NewBlockDist(n, 2)
	g := distgraph.Build(d, edges, distgraph.Options{})
	eng := pattern.NewEngine(u, g, pmap.NewLockMap(d, 1), pattern.DefaultPlanOptions())
	s := NewSSSP(eng)
	s.UseDelta(u, 1)
	u.Run(func(r *am.Rank) { s.Run(r, 0) })
	checkDist(t, "dial", s.Dist.Gather(), want)
	maxFinite := int64(0)
	for _, dv := range want {
		if dv != seq.Inf && dv > maxFinite {
			maxFinite = dv
		}
	}
	if be := int64(s.BucketEpochs()); be < maxFinite/2 || be > 3*maxFinite {
		t.Fatalf("bucket epochs %d vs max distance %d: not label-setting-shaped", be, maxFinite)
	}
}
