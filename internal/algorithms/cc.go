package algorithms

import (
	"fmt"
	"sync/atomic"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/obs"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/strategy"
)

// CCPattern builds the §II-B connected-components pattern. Three actions:
//
//   - cc_search fans out from a claimed vertex over adj(v): an unclaimed
//     neighbour is claimed into v's component (the dependency work hook
//     continues the search from it); a neighbour claimed by a different
//     search records the conflict symmetrically in the two roots' conflict
//     sets.
//   - cc_link propagates the better (smaller) rewrite label across recorded
//     conflicts (generator: the conf set — fan-out over vertices stored in a
//     property map, §III-C).
//   - cc_jump is the paper's pointer jumping: if the rewrite target of v's
//     rewrite target is better, shortcut to it — the two-hop gather
//     chg[chg[v]] (experiment E11).
//
// pnt[v] is the claiming root (NULL when unclaimed); chg[r] is root r's
// current rewrite label (initialized to r itself); conf[r] is the set of
// roots r collided with.
func CCPattern() *pattern.Pattern {
	p := pattern.New("CC")
	pnt := p.VertexProp("pnt")
	chg := p.VertexProp("chg")
	conf := p.VertexSetProp("conf")

	search := p.Action("cc_search", pattern.Adj())
	pv := pnt.At(pattern.V())
	pu := pnt.At(pattern.U())
	search.If(pattern.Eq(pu, pattern.C(pattern.NilWord))).
		Set(pu, pv)
	search.Elif(pattern.Ne(pu, pv)).
		Insert(conf.AtVal(pu), pv).
		Insert(conf.AtVal(pv), pu)

	link := p.Action("cc_link", pattern.SetOf(conf))
	cv := chg.At(pattern.V())
	cu := chg.At(pattern.U())
	link.If(pattern.Lt(cv, cu)).Set(cu, cv)

	jump := p.Action("cc_jump", pattern.None())
	cc := chg.AtVal(cv)
	jump.If(pattern.Lt(cc, cv)).Set(chg.At(pattern.V()), cc)

	return p
}

// CC solves connected components by the paper's parallel-search algorithm
// (Fig. 3): concurrent searches claim territories, colliding searches record
// conflicts, and the recorded conflict labels are resolved by link rounds
// and pointer jumping under the `once` strategy, followed by the final
// non-graph rewrite.
type CC struct {
	G *distgraph.Graph
	// Pnt[v] is the root that claimed v; Chg[r] the root's final rewrite
	// label; Comp[v] the resolved component label after Run.
	Pnt, Chg, Comp *pmap.VertexWord
	Conf           *pmap.VertexSet

	Search, Link, Jump *pattern.BoundAction

	// FlushEvery controls search pacing: epoch_flush is called after this
	// many search starts (1 = the paper's Fig. 3 loop; larger values
	// start more searches concurrently, increasing conflicts — E3).
	FlushEvery int

	// JumpRounds records how many once-rounds the resolution loop took
	// (identical on every rank; written by rank 0).
	JumpRounds int
	// searchesStarted counts claimed roots across all ranks.
	searchesStarted atomic.Int64
}

// SearchesStarted returns the number of search roots claimed across all
// ranks (valid after Run).
func (c *CC) SearchesStarted() int64 { return c.searchesStarted.Load() }

// NewCC binds the CC pattern over eng's graph. The graph must be symmetrized
// (undirected adjacency). Must be called before Universe.Run.
func NewCC(eng *pattern.Engine, lm *pmap.LockMap) *CC {
	g := eng.Graph()
	c := &CC{
		G:          g,
		Pnt:        pmap.NewVertexWord(g.Dist(), pattern.NilWord),
		Chg:        pmap.NewVertexWord(g.Dist(), 0),
		Comp:       pmap.NewVertexWord(g.Dist(), pattern.NilWord),
		Conf:       pmap.NewVertexSet(g.Dist(), lm),
		FlushEvery: 1,
	}
	bound, err := eng.Bind(CCPattern(), pattern.Bindings{
		"pnt": c.Pnt, "chg": c.Chg, "conf": c.Conf,
	})
	if err != nil {
		panic(fmt.Sprintf("algorithms: CC bind: %v", err))
	}
	c.Search = bound.Action("cc_search")
	c.Link = bound.Action("cc_link")
	c.Jump = bound.Action("cc_jump")
	// The paper's work hook: continue the search from newly claimed
	// vertices.
	c.Search.SetWork(func(r *am.Rank, v distgraph.Vertex) { c.Search.InvokeAsync(r, v) })
	// searchesStarted is a metric, not algorithm state; it is not
	// checkpointed.
	u := eng.Universe()
	u.RegisterCheckpointer(c.Pnt)
	u.RegisterCheckpointer(c.Chg)
	u.RegisterCheckpointer(c.Comp)
	u.RegisterCheckpointer(c.Conf)
	return c
}

// Run computes components. Collective. Afterwards Comp holds, for every
// vertex, the minimum root label of its component; two vertices are in the
// same component iff their Comp values are equal.
//
// Run is single-process only: the final rewrite follows rewrite pointers
// across shards with direct cross-rank reads. Multi-process hosts call
// RunResolve and perform the rewrite globally from the gathered Pnt/Chg
// vectors (the rewrite is "not a graph computation", §II-B, so it needs no
// messaging — just the full label table).
func (c *CC) Run(r *am.Rank) {
	c.RunResolve(r)
	g := c.G
	rid := r.ID()

	// rewrite_cc: "simply rewrite component roots for all vertices based
	// on the values in the chg property map ... not a graph computation"
	// (§II-B). Chg values are quiescent now; resolve each vertex's root
	// label, following rewrite pointers across shards directly.
	r.Barrier()
	rw := r.Phase(obs.PhaseEmit)
	for _, v := range LocalVertices(g, r) {
		root := c.Pnt.Get(rid, v)
		lbl := root
		for i := 0; i < 64; i++ {
			next := c.Chg.Get(g.Owner(distgraph.Vertex(lbl)), distgraph.Vertex(lbl))
			if next == lbl {
				break
			}
			lbl = next
		}
		c.Comp.Set(rid, v, lbl)
	}
	rw.End()
	r.Barrier()
}

// RunResolve runs the search phase and the link/jump resolution loop,
// leaving Pnt and Chg quiescent and consistent; Comp is not written.
// Collective.
func (c *CC) RunResolve(r *am.Rank) {
	g := c.G
	rid := r.ID()
	// Initialization (Fig. 3 lines 2-4): pnt NULL, chg[v] = v.
	ph := r.Phase(obs.PhaseCollect)
	c.Pnt.ForEachLocal(rid, func(v distgraph.Vertex, _ int64) {
		c.Pnt.Set(rid, v, pattern.NilWord)
		c.Chg.Set(rid, v, int64(v))
	})
	ph.End()
	r.Barrier()

	// Parallel search phase (Fig. 3 lines 6-13): start a search at every
	// still-unclaimed local vertex, flushing to let running searches
	// claim territory before the next start.
	if rid == 0 {
		c.searchesStarted.Store(0)
	}
	r.Barrier()
	started := int64(0)
	r.Epoch(func(ep *am.Epoch) {
		sinceFlush := 0
		for _, v := range LocalVertices(g, r) {
			// Atomically claim v as its own root; skip if a
			// running search got here first.
			if !c.Pnt.CAS(rid, v, pattern.NilWord, int64(v)) {
				continue
			}
			started++
			c.Search.Invoke(r, v)
			sinceFlush++
			if sinceFlush >= c.FlushEvery {
				ep.Flush()
				sinceFlush = 0
			}
		}
	})
	c.searchesStarted.Add(started)

	// Resolution loop (Fig. 3 lines 14-17): repeat once(cc_link) and
	// once(cc_jump) over the conflicting roots until neither changes
	// anything anywhere. The roots list is derived from Conf inside each
	// epoch (OnceOver) so a checkpoint-restarted replay computes it after
	// its state restore; Conf is quiescent here, so every evaluation yields
	// the same list.
	rootsOf := func() []distgraph.Vertex {
		var roots []distgraph.Vertex
		for _, v := range LocalVertices(g, r) {
			if c.Conf.Len(rid, v) > 0 {
				roots = append(roots, v)
			}
		}
		return roots
	}
	rounds := 0
	for {
		linked := strategy.OnceOver(r, c.Link, rootsOf)
		jumped := strategy.OnceOver(r, c.Jump, rootsOf)
		rounds++
		if !linked && !jumped {
			break
		}
		if rounds > 64 {
			panic("algorithms: CC resolution did not converge")
		}
	}
	if rid == 0 {
		c.JumpRounds = rounds
	}
}
