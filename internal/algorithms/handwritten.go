package algorithms

import (
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
)

// HandSSSP is a hand-written AM++ SSSP: the messaging a programmer would
// write directly against the substrate, without the pattern engine. It is
// the abstraction-overhead baseline of experiment E9 — the pattern engine
// should produce the same message pattern (one coalesced relax message per
// improving edge) with only interpretation overhead on top.
type HandSSSP struct {
	G    *distgraph.Graph
	Dist *pmap.VertexWord
	mt   *am.MsgType[relaxMsg]
}

type relaxMsg struct {
	T distgraph.Vertex
	D int64
}

// NewHandSSSP registers the relax message type on u. Call before
// Universe.Run.
func NewHandSSSP(u *am.Universe, g *distgraph.Graph) *HandSSSP {
	h := &HandSSSP{G: g, Dist: pmap.NewVertexWord(g.Dist(), pattern.Inf)}
	h.mt = am.Register(u, "hand-relax", func(r *am.Rank, m relaxMsg) {
		if h.Dist.Min(r.ID(), m.T, m.D) {
			g.ForOutEdges(r.ID(), m.T, func(e distgraph.EdgeRef) {
				h.mt.Send(r, relaxMsg{T: e.Trg(), D: m.D + g.Weight(r.ID(), e)})
			})
		}
	}).WithAddresser(func(m relaxMsg) int { return g.Owner(m.T) })
	return h
}

// MsgType exposes the relax message type (for reduction-cache experiments).
func (h *HandSSSP) MsgType() *am.MsgType[relaxMsg] { return h.mt }

// WithReductionCache installs AM++'s caching layer on the relax message:
// while a relaxation for a target is buffered, further relaxations for the
// same target combine into the minimum (experiment E6).
func (h *HandSSSP) WithReductionCache() *HandSSSP {
	h.mt.WithReduction(
		func(m relaxMsg) uint64 { return uint64(m.T) },
		func(old, in relaxMsg) (relaxMsg, bool) {
			if in.D < old.D {
				return in, true
			}
			return old, false
		},
	)
	return h
}

// Run solves SSSP from src. Collective.
func (h *HandSSSP) Run(r *am.Rank, src distgraph.Vertex) {
	h.Dist.ForEachLocal(r.ID(), func(v distgraph.Vertex, _ int64) {
		h.Dist.Set(r.ID(), v, pattern.Inf)
	})
	r.Barrier()
	r.Epoch(func(ep *am.Epoch) {
		if h.G.Owner(src) == r.ID() {
			h.mt.Send(r, relaxMsg{T: src, D: 0})
		}
	})
}

// HandBFS is the hand-written AM++ BFS baseline.
type HandBFS struct {
	G     *distgraph.Graph
	Level *pmap.VertexWord
	mt    *am.MsgType[visitMsg]
}

type visitMsg struct {
	T distgraph.Vertex
	L int64
}

// NewHandBFS registers the visit message type on u. Call before
// Universe.Run.
func NewHandBFS(u *am.Universe, g *distgraph.Graph) *HandBFS {
	h := &HandBFS{G: g, Level: pmap.NewVertexWord(g.Dist(), pattern.Inf)}
	h.mt = am.Register(u, "hand-visit", func(r *am.Rank, m visitMsg) {
		if h.Level.Min(r.ID(), m.T, m.L) {
			g.ForOutEdges(r.ID(), m.T, func(e distgraph.EdgeRef) {
				h.mt.Send(r, visitMsg{T: e.Trg(), L: m.L + 1})
			})
		}
	}).WithAddresser(func(m visitMsg) int { return g.Owner(m.T) })
	return h
}

// Run computes levels from src. Collective.
func (h *HandBFS) Run(r *am.Rank, src distgraph.Vertex) {
	h.Level.ForEachLocal(r.ID(), func(v distgraph.Vertex, _ int64) {
		h.Level.Set(r.ID(), v, pattern.Inf)
	})
	r.Barrier()
	r.Epoch(func(ep *am.Epoch) {
		if h.G.Owner(src) == r.ID() {
			h.mt.Send(r, visitMsg{T: src, L: 0})
		}
	})
}
