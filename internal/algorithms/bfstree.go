package algorithms

import (
	"fmt"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/obs"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/strategy"
)

// BFSTreePattern builds a Graph500-style parent-tree BFS: every vertex is
// claimed once by the first arriving search edge.
//
//	visit(vertex v) {
//	  generator: e in out_edges;
//	  if (parent[trg(e)] == NULL) parent[trg(e)] = v;
//	}
func BFSTreePattern() *pattern.Pattern {
	p := pattern.New("BFSTree")
	parent := p.VertexProp("parent")
	visit := p.Action("visit", pattern.OutEdges())
	visit.If(pattern.Eq(parent.At(pattern.Trg()), pattern.C(pattern.NilWord))).
		Set(parent.At(pattern.Trg()), pattern.Vtx(pattern.V()))
	return p
}

// BFSTree computes a BFS parent tree (the Graph500 kernel-2 output shape:
// any valid search tree, not necessarily level-minimal, since claims race).
type BFSTree struct {
	G      *distgraph.Graph
	Parent *pmap.VertexWord
	Visit  *pattern.BoundAction

	fp *strategy.FixedPoint
}

// NewBFSTree binds the parent-tree pattern over eng's graph. Call before
// Universe.Run.
func NewBFSTree(eng *pattern.Engine) *BFSTree {
	g := eng.Graph()
	b := &BFSTree{G: g, Parent: pmap.NewVertexWord(g.Dist(), pattern.NilWord)}
	bound, err := eng.Bind(BFSTreePattern(), pattern.Bindings{"parent": b.Parent})
	if err != nil {
		panic(fmt.Sprintf("algorithms: BFSTree bind: %v", err))
	}
	b.Visit = bound.Action("visit")
	b.fp = strategy.NewFixedPoint(b.Visit)
	return b
}

// Run builds a search tree from src (whose parent is itself). Collective.
func (b *BFSTree) Run(r *am.Rank, src distgraph.Vertex) {
	ph := r.Phase(obs.PhaseCollect)
	b.Parent.ForEachLocal(r.ID(), func(v distgraph.Vertex, _ int64) {
		b.Parent.Set(r.ID(), v, pattern.NilWord)
	})
	var seeds []distgraph.Vertex
	if b.G.Owner(src) == r.ID() {
		b.Parent.Set(r.ID(), src, int64(src))
		seeds = []distgraph.Vertex{src}
	}
	ph.End()
	r.Barrier()
	b.fp.Run(r, seeds)
}

// ValidateTree checks the Graph500-style tree invariants against the edge
// list: (1) the root is its own parent, (2) every parent edge exists in the
// graph, (3) the parent relation is acyclic (chases terminate at the root),
// and (4) exactly the vertices reachable in reference are in the tree.
// Returns an error describing the first violation.
func ValidateTree(n int, edges []distgraph.Edge, src distgraph.Vertex, parent []int64, reachable []bool) error {
	if parent[src] != int64(src) {
		return fmt.Errorf("root %d has parent %d", src, parent[src])
	}
	edgeSet := make(map[[2]distgraph.Vertex]bool, len(edges))
	for _, e := range edges {
		edgeSet[[2]distgraph.Vertex{e.Src, e.Dst}] = true
	}
	for v := 0; v < n; v++ {
		pv := parent[v]
		if pv == int64(pattern.NilWord) || pv < 0 {
			if reachable[v] {
				return fmt.Errorf("reachable vertex %d has no parent", v)
			}
			continue
		}
		if !reachable[v] {
			return fmt.Errorf("unreachable vertex %d has parent %d", v, pv)
		}
		if distgraph.Vertex(v) != src && !edgeSet[[2]distgraph.Vertex{distgraph.Vertex(pv), distgraph.Vertex(v)}] {
			return fmt.Errorf("tree edge %d->%d not in graph", pv, v)
		}
	}
	// Acyclicity: chase each vertex to the root within n steps.
	for v := 0; v < n; v++ {
		if parent[v] == int64(pattern.NilWord) {
			continue
		}
		cur := distgraph.Vertex(v)
		for steps := 0; cur != src; steps++ {
			if steps > n {
				return fmt.Errorf("parent chain from %d does not reach the root", v)
			}
			cur = distgraph.Vertex(parent[cur])
		}
	}
	return nil
}
