package algorithms

import (
	"fmt"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/obs"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/strategy"
)

// WidestPattern builds the widest-path (max-min bottleneck capacity)
// pattern — the dual of SSSP's relax, compiling to an atomic-max merged
// evaluation:
//
//	widen(vertex v) {
//	  generator: e in out_edges;
//	  alias: c = min(cap[v], weight[e]);
//	  if (c > cap[trg(e)]) cap[trg(e)] = c;
//	}
func WidestPattern() *pattern.Pattern {
	p := pattern.New("Widest")
	capP := p.VertexProp("cap")
	weight := p.EdgeProp("weight")
	widen := p.Action("widen", pattern.OutEdges())
	c := pattern.MinE(capP.At(pattern.V()), weight.At(pattern.E()))
	widen.If(pattern.Gt(c, capP.At(pattern.Trg()))).Set(capP.At(pattern.Trg()), c)
	return p
}

// Widest computes, for every vertex, the maximum over source paths of the
// minimum edge weight along the path.
type Widest struct {
	G     *distgraph.Graph
	Cap   *pmap.VertexWord
	Widen *pattern.BoundAction

	fp *strategy.FixedPoint
}

// NewWidest binds the widest-path pattern over eng's graph. Call before
// Universe.Run.
func NewWidest(eng *pattern.Engine) *Widest {
	g := eng.Graph()
	w := &Widest{G: g, Cap: pmap.NewVertexWord(g.Dist(), 0)}
	bound, err := eng.Bind(WidestPattern(), pattern.Bindings{
		"cap":    w.Cap,
		"weight": pmap.WeightMap(g),
	})
	if err != nil {
		panic(fmt.Sprintf("algorithms: Widest bind: %v", err))
	}
	w.Widen = bound.Action("widen")
	w.fp = strategy.NewFixedPoint(w.Widen)
	return w
}

// Run computes capacities from src (whose capacity is ∞). Collective.
func (w *Widest) Run(r *am.Rank, src distgraph.Vertex) {
	ph := r.Phase(obs.PhaseCollect)
	w.Cap.ForEachLocal(r.ID(), func(v distgraph.Vertex, _ int64) {
		w.Cap.Set(r.ID(), v, 0)
	})
	var seeds []distgraph.Vertex
	if w.G.Owner(src) == r.ID() {
		w.Cap.Set(r.ID(), src, pattern.Inf)
		seeds = []distgraph.Vertex{src}
	}
	ph.End()
	r.Barrier()
	w.fp.Run(r, seeds)
}
