package algorithms

import (
	"testing"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/seq"
)

func TestSSSPLightHeavy(t *testing.T) {
	n, edges := gen.RMAT(9, 8, gen.Weights{Min: 1, Max: 100}, 101)
	want := seq.Dijkstra(n, edges, 0)
	for _, delta := range []int64{10, 50, 1000} {
		u, eng, _ := newEngine(am.Config{Ranks: 3, ThreadsPerRank: 2}, n, edges, distgraph.Options{})
		s := NewSSSP(eng)
		s.UseDeltaLightHeavy(u, delta)
		u.Run(func(r *am.Rank) { s.Run(r, 0) })
		checkDist(t, "light-heavy", s.Dist.Gather(), want)
	}
}

// TestLightHeavyEarlyExitPlan: the weight guard hoists into an early-exit
// preTest, and the remaining test still classifies as the atomic relax
// shape — so heavy edges cost no messages during the light phase and light
// relaxations stay lock-free.
func TestLightHeavyEarlyExitPlan(t *testing.T) {
	_, eng, _ := newEngine(am.Config{Ranks: 1}, 4, gen.Path(4, gen.Weights{Min: 1, Max: 9}, 0), distgraph.Options{})
	bound, err := eng.Bind(SSSPLightHeavyPattern(50), pattern.Bindings{
		"dist":   pmap.NewVertexWord(eng.Graph().Dist(), pattern.Inf),
		"weight": pmap.WeightMap(eng.Graph()),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"relax_light", "relax_heavy"} {
		c := bound.Action(name).PlanInfo().Conds[0]
		if !c.EarlyExit {
			t.Errorf("%s: weight guard not hoisted to early exit", name)
		}
		if c.Sync != "atomic-min" {
			t.Errorf("%s: sync = %s, want atomic-min", name, c.Sync)
		}
		if c.Messages != 1 {
			t.Errorf("%s: messages = %d, want 1", name, c.Messages)
		}
	}
}

// TestEarlyExitSavesMessages: a pattern with an entry-local filter should
// send messages only for items passing the filter when EarlyExit is on.
func TestEarlyExitSavesMessages(t *testing.T) {
	n, edges := gen.RMAT(9, 8, gen.Weights{Min: 1, Max: 100}, 17)
	counts := map[bool]int64{}
	for _, ee := range []bool{true, false} {
		u := am.NewUniverse(am.Config{Ranks: 4, ThreadsPerRank: 1})
		d := distgraph.NewBlockDist(n, 4)
		g := distgraph.Build(d, edges, distgraph.Options{})
		popts := pattern.DefaultPlanOptions()
		popts.EarlyExit = ee
		eng := pattern.NewEngine(u, g, pmap.NewLockMap(d, 1), popts)

		p := pattern.New("Filter")
		mark := p.VertexProp("mark")
		w := p.EdgeProp("w")
		a := p.Action("mark_heavy", pattern.OutEdges())
		// Only edges with weight > 90 mark their target.
		a.If(pattern.And(pattern.Gt(w.At(pattern.E()), pattern.C(90)),
			pattern.Lt(mark.At(pattern.Trg()), pattern.C(1)))).
			Set(mark.At(pattern.Trg()), pattern.C(1))
		mm := pmap.NewVertexWord(d, 0)
		bound, err := eng.Bind(p, pattern.Bindings{"mark": mm, "w": pmap.WeightMap(g)})
		if err != nil {
			t.Fatal(err)
		}
		act := bound.Action("mark_heavy")
		if got := act.PlanInfo().Conds[0].EarlyExit; got != ee {
			t.Fatalf("EarlyExit plan flag = %v, want %v", got, ee)
		}
		u.Run(func(r *am.Rank) {
			r.Epoch(func(ep *am.Epoch) {
				for _, v := range LocalVertices(g, r) {
					act.Invoke(r, v)
				}
			})
		})
		counts[ee] = u.Stats.MsgsSent()
		// Correctness: marks identical in both modes.
		want := map[distgraph.Vertex]bool{}
		for _, e := range edges {
			if e.W > 90 {
				want[e.Dst] = true
			}
		}
		for v, m := range mm.Gather() {
			if (m == 1) != want[distgraph.Vertex(v)] {
				t.Fatalf("earlyexit=%v: mark[%d]=%d want %v", ee, v, m, want[distgraph.Vertex(v)])
			}
		}
	}
	if counts[true] >= counts[false] {
		t.Fatalf("early exit did not save messages: on=%d off=%d", counts[true], counts[false])
	}
	// Roughly 10% of weights exceed 90; allow generous slack.
	if counts[true]*4 > counts[false] {
		t.Fatalf("early exit saved too little: on=%d off=%d", counts[true], counts[false])
	}
}

func TestDegreeCount(t *testing.T) {
	n, edges := gen.RMAT(9, 8, gen.Weights{}, 31)
	want := make([]int64, n)
	for _, e := range edges {
		want[e.Dst]++
	}
	for _, cfg := range []am.Config{{Ranks: 1, ThreadsPerRank: 0}, {Ranks: 4, ThreadsPerRank: 2}} {
		u, eng, _ := newEngine(cfg, n, edges, distgraph.Options{})
		dc := NewDegreeCount(eng)
		u.Run(func(r *am.Rank) { dc.Run(r) })
		got := dc.InDeg.Gather()
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("cfg %+v: indeg[%d]=%d want %d", cfg, v, got[v], want[v])
			}
		}
		// The unconditional remote add must classify as atomic-add.
		if s := dc.Count.PlanInfo().Conds[0].Sync; s != "atomic-add" {
			t.Fatalf("degree sync = %s", s)
		}
	}
}
