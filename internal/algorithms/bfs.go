package algorithms

import (
	"fmt"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/obs"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/strategy"
)

// BFSPattern builds a breadth-first level-label pattern: the relax shape
// with an implicit unit weight, demonstrating pattern reuse across
// algorithms (the paper's point that algorithms "share their core
// operations").
//
//	bfs(vertex v) {
//	  generator: e in out_edges;
//	  if (lvl[v] + 1 < lvl[trg(e)]) lvl[trg(e)] = lvl[v] + 1;
//	}
func BFSPattern() *pattern.Pattern {
	p := pattern.New("BFS")
	lvl := p.VertexProp("lvl")
	bfs := p.Action("bfs", pattern.OutEdges())
	d := pattern.Add(lvl.At(pattern.V()), pattern.C(1))
	bfs.If(pattern.Lt(d, lvl.At(pattern.Trg()))).Set(lvl.At(pattern.Trg()), d)
	return p
}

// BFS computes hop counts from a source using the fixed_point strategy.
type BFS struct {
	G     *distgraph.Graph
	Level *pmap.VertexWord
	Visit *pattern.BoundAction

	fp *strategy.FixedPoint
}

// NewBFS binds the BFS pattern over eng's graph. Call before Universe.Run.
func NewBFS(eng *pattern.Engine) *BFS {
	g := eng.Graph()
	b := &BFS{G: g, Level: pmap.NewVertexWord(g.Dist(), pattern.Inf)}
	bound, err := eng.Bind(BFSPattern(), pattern.Bindings{"lvl": b.Level})
	if err != nil {
		panic(fmt.Sprintf("algorithms: BFS bind: %v", err))
	}
	b.Visit = bound.Action("bfs")
	b.fp = strategy.NewFixedPoint(b.Visit)
	eng.Universe().RegisterCheckpointer(b.Level)
	return b
}

// Run computes levels from src. Collective.
func (b *BFS) Run(r *am.Rank, src distgraph.Vertex) {
	ph := r.Phase(obs.PhaseCollect)
	b.ResetLocal(r)
	seeds := b.SeedLocal(r, nil, src)
	ph.End()
	r.Barrier()
	b.fp.Run(r, seeds)
}

// ResetLocal resets this rank's slice of the level map to unvisited (∞).
// Rank-local; callers sequence their own barrier before seeding messages can
// arrive. The query plane uses it to recycle a bound BFS slot between fused
// batches without re-binding the pattern.
func (b *BFS) ResetLocal(r *am.Rank) {
	b.Level.ForEachLocal(r.ID(), func(v distgraph.Vertex, _ int64) {
		b.Level.Set(r.ID(), v, pattern.Inf)
	})
}

// SeedLocal marks src as a level-0 root if this rank owns it, appending it to
// seeds (unchanged otherwise). Splitting seeding from Run lets the query
// plane fuse many sources — across this and sibling slots — into one epoch
// sweep: every returned seed is later Invoked inside the same collective
// epoch, and the fixed point of the min-relaxation is independent of how many
// frontiers share the sweep.
func (b *BFS) SeedLocal(r *am.Rank, seeds []distgraph.Vertex, src distgraph.Vertex) []distgraph.Vertex {
	if b.G.Owner(src) == r.ID() {
		b.Level.Set(r.ID(), src, 0)
		seeds = append(seeds, src)
	}
	return seeds
}

// InvokeSeeds applies the bound visit action to each seed; the caller must be
// inside a collective epoch (the query plane's fused sweep).
func (b *BFS) InvokeSeeds(r *am.Rank, seeds []distgraph.Vertex) {
	for _, v := range seeds {
		b.Visit.Invoke(r, v)
	}
}
