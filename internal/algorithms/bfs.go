package algorithms

import (
	"fmt"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/obs"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/strategy"
)

// BFSPattern builds a breadth-first level-label pattern: the relax shape
// with an implicit unit weight, demonstrating pattern reuse across
// algorithms (the paper's point that algorithms "share their core
// operations").
//
//	bfs(vertex v) {
//	  generator: e in out_edges;
//	  if (lvl[v] + 1 < lvl[trg(e)]) lvl[trg(e)] = lvl[v] + 1;
//	}
func BFSPattern() *pattern.Pattern {
	p := pattern.New("BFS")
	lvl := p.VertexProp("lvl")
	bfs := p.Action("bfs", pattern.OutEdges())
	d := pattern.Add(lvl.At(pattern.V()), pattern.C(1))
	bfs.If(pattern.Lt(d, lvl.At(pattern.Trg()))).Set(lvl.At(pattern.Trg()), d)
	return p
}

// BFS computes hop counts from a source using the fixed_point strategy.
type BFS struct {
	G     *distgraph.Graph
	Level *pmap.VertexWord
	Visit *pattern.BoundAction

	fp *strategy.FixedPoint
}

// NewBFS binds the BFS pattern over eng's graph. Call before Universe.Run.
func NewBFS(eng *pattern.Engine) *BFS {
	g := eng.Graph()
	b := &BFS{G: g, Level: pmap.NewVertexWord(g.Dist(), pattern.Inf)}
	bound, err := eng.Bind(BFSPattern(), pattern.Bindings{"lvl": b.Level})
	if err != nil {
		panic(fmt.Sprintf("algorithms: BFS bind: %v", err))
	}
	b.Visit = bound.Action("bfs")
	b.fp = strategy.NewFixedPoint(b.Visit)
	eng.Universe().RegisterCheckpointer(b.Level)
	return b
}

// Run computes levels from src. Collective.
func (b *BFS) Run(r *am.Rank, src distgraph.Vertex) {
	ph := r.Phase(obs.PhaseCollect)
	b.Level.ForEachLocal(r.ID(), func(v distgraph.Vertex, _ int64) {
		b.Level.Set(r.ID(), v, pattern.Inf)
	})
	var seeds []distgraph.Vertex
	if b.G.Owner(src) == r.ID() {
		b.Level.Set(r.ID(), src, 0)
		seeds = []distgraph.Vertex{src}
	}
	ph.End()
	r.Barrier()
	b.fp.Run(r, seeds)
}
