package relay

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func startTestRelay(t *testing.T) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	s := NewServer("relay")
	go s.Serve(ln)
	return s, ln.Addr().String()
}

// echoServer accepts one connection and echoes everything back.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()
	return ln.Addr().String()
}

func TestSplitAddr(t *testing.T) {
	for _, tc := range []struct {
		in, net, addr string
		ok            bool
	}{
		{"tcp://127.0.0.1:9", "tcp", "127.0.0.1:9", true},
		{"unix:///tmp/x.sock", "unix", "/tmp/x.sock", true},
		{"udp://x:1", "", "", false},
		{"no-scheme", "", "", false},
		{"tcp://", "", "", false},
	} {
		n, a, err := SplitAddr(tc.in)
		if tc.ok && (err != nil || n != tc.net || a != tc.addr) {
			t.Fatalf("SplitAddr(%q) = %q, %q, %v", tc.in, n, a, err)
		}
		if !tc.ok && err == nil {
			t.Fatalf("SplitAddr(%q) must fail", tc.in)
		}
	}
}

func TestRelayTunnelAndTelemetry(t *testing.T) {
	srv, addr := startTestRelay(t)
	target := echoServer(t)

	c, err := Dial("tcp", addr, "tcp", target, time.Second)
	if err != nil {
		t.Fatalf("Dial through relay: %v", err)
	}
	msg := []byte("through the worker")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read echo: %v", err)
	}
	if string(buf) != string(msg) {
		t.Fatalf("echo = %q, want %q", buf, msg)
	}
	c.Close()

	// The splice shows up in the relay's own telemetry, queried over the
	// same listener the tunnel used.
	pt, err := QueryTelemetry("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("QueryTelemetry: %v", err)
	}
	if pt.Process != "relay" || pt.PID == 0 {
		t.Fatalf("telemetry identity: %+v", pt)
	}
	if pt.Counters["relay_conns"] != 1 {
		t.Fatalf("relay_conns = %d, want 1", pt.Counters["relay_conns"])
	}
	if pt.Counters["relay_telemetry_reqs"] != 1 {
		t.Fatalf("relay_telemetry_reqs = %d, want 1", pt.Counters["relay_telemetry_reqs"])
	}
	if pt.Counters["relay_bytes_to_target"] < int64(len(msg)) {
		t.Fatalf("relay_bytes_to_target = %d, want >= %d", pt.Counters["relay_bytes_to_target"], len(msg))
	}
	if g := pt.Gauges["relay_active_conns"]; g.Max < 1 {
		t.Fatalf("relay_active_conns peak = %+v, want >= 1", g)
	}
	// Dial latency lands in collect; the closed tunnel's lifetime may still
	// be settling (the splice goroutine records after both halves close).
	if pt.Phases["collect"].Count < 1 {
		t.Fatalf("collect phase (target dial) empty: %+v", pt.Phases)
	}
	_ = srv
}

func TestRelayBadHelloCounted(t *testing.T) {
	srv, addr := startTestRelay(t)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c.Write([]byte("GET / HTTP/1.1\r\n\r\n")) // not a relay hello
	buf := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("relay must close a bad hello, not answer it")
	}
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Telemetry().Counters["relay_bad_hellos"] == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("bad hello never counted: %+v", srv.Telemetry().Counters)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRelayDialErrorCounted(t *testing.T) {
	srv, addr := startTestRelay(t)
	// A target nothing listens on: grab a port and release it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	dead := ln.Addr().String()
	ln.Close()
	c, err := Dial("tcp", addr, "tcp", dead, time.Second)
	if err != nil {
		t.Fatalf("Dial (hello phase) should succeed even when the target is dead: %v", err)
	}
	defer c.Close()
	deadline := time.Now().Add(3 * time.Second)
	for srv.Telemetry().Counters["relay_dial_errors"] == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("dial error never counted: %+v", srv.Telemetry().Counters)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRelayTelemetryConcurrent(t *testing.T) {
	_, addr := startTestRelay(t)
	target := echoServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				c, err := Dial("tcp", addr, "tcp", target, time.Second)
				if err != nil {
					t.Errorf("Dial: %v", err)
					return
				}
				c.Write([]byte("x"))
				c.Close()
				if _, err := QueryTelemetry("tcp", addr, time.Second); err != nil {
					t.Errorf("QueryTelemetry: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	pt, err := QueryTelemetry("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("final QueryTelemetry: %v", err)
	}
	if pt.Counters["relay_telemetry_reqs"] < 32 {
		t.Fatalf("relay_telemetry_reqs = %d, want >= 32", pt.Counters["relay_telemetry_reqs"])
	}
	if !strings.HasPrefix(pt.Process, "relay") {
		t.Fatalf("process = %q", pt.Process)
	}
}
