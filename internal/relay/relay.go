// Package relay implements the frame-relay protocol spoken between a
// universe's socket transport and a declpat-worker process: a dialer
// connects to the relay, names a target address in a small hello, and the
// relay splices the connection to a fresh dial of that target. Every byte
// after the hello is copied verbatim in both directions, so the transport's
// handshake, frames, heartbeats, and reconnects all genuinely cross the
// worker process — which is the point: cmd/declpat-worker puts a second OS
// process on the data path without the worker needing to understand frames.
//
// The same listener also answers telemetry queries: a hello opening with
// TelemetryMagic instead of Magic receives one obs telemetry frame (the
// relay's counters, link gauges, and phase histograms) and is closed. The
// coordinator's socket transport uses this to fold the worker process into
// Universe.Metrics().
package relay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"declpat/internal/obs"
)

// Magic opens every relay tunnel hello; TelemetryMagic opens a telemetry
// query. A connection that starts with neither is rejected (most likely a
// raw transport dial that skipped the relay). Both hellos are 6 bytes:
// tunnels follow the magic with a u16 target length, telemetry queries with
// a u16 protocol version.
const (
	Magic          = "DPRW"
	TelemetryMagic = "DPTQ"
)

// maxTarget bounds the hello's target string; longer targets are a protocol
// violation, not a configuration.
const maxTarget = 1024

// helloTimeout bounds how long the relay waits for a hello and how long it
// spends dialing the target on the tunnel's behalf.
const helloTimeout = 5 * time.Second

// SplitAddr parses a listen/relay address of the form "tcp://host:port" or
// "unix:///path/to.sock" into (network, address).
func SplitAddr(s string) (network, addr string, err error) {
	scheme, rest, ok := strings.Cut(s, "://")
	if !ok {
		return "", "", fmt.Errorf("relay: address %q is not scheme://address", s)
	}
	switch scheme {
	case "tcp", "tcp4", "tcp6", "unix":
	default:
		return "", "", fmt.Errorf("relay: unsupported scheme %q (want tcp or unix)", scheme)
	}
	if rest == "" {
		return "", "", fmt.Errorf("relay: address %q has an empty host part", s)
	}
	return scheme, rest, nil
}

// Dial connects to the relay at (relayNetwork, relayAddr), sends the hello
// naming (targetNetwork, targetAddr), and returns the spliced connection:
// reads and writes on it reach the target as if dialed directly.
func Dial(relayNetwork, relayAddr, targetNetwork, targetAddr string, timeout time.Duration) (net.Conn, error) {
	target := targetNetwork + "|" + targetAddr
	if len(target) > maxTarget {
		return nil, fmt.Errorf("relay: target %q exceeds %d bytes", target, maxTarget)
	}
	c, err := net.DialTimeout(relayNetwork, relayAddr, timeout)
	if err != nil {
		return nil, err
	}
	hello := make([]byte, 0, len(Magic)+2+len(target))
	hello = append(hello, Magic...)
	hello = binary.LittleEndian.AppendUint16(hello, uint16(len(target)))
	hello = append(hello, target...)
	c.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := c.Write(hello); err != nil {
		c.Close()
		return nil, fmt.Errorf("relay: hello to %s: %w", relayAddr, err)
	}
	c.SetWriteDeadline(time.Time{})
	return c, nil
}

// QueryTelemetry dials the relay at (network, addr), sends a telemetry
// hello, and returns the relay's telemetry frame.
func QueryTelemetry(network, addr string, timeout time.Duration) (obs.ProcessTelemetry, error) {
	var t obs.ProcessTelemetry
	c, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return t, err
	}
	defer c.Close()
	hello := make([]byte, 0, len(TelemetryMagic)+2)
	hello = append(hello, TelemetryMagic...)
	hello = binary.LittleEndian.AppendUint16(hello, obs.TelemetryVersion)
	c.SetDeadline(time.Now().Add(timeout))
	if _, err := c.Write(hello); err != nil {
		return t, fmt.Errorf("relay: telemetry hello to %s: %w", addr, err)
	}
	return obs.ReadTelemetryFrame(c)
}

// Server is one relay instance: the tunnel state machine plus the telemetry
// it exports. The zero value is not usable; create with NewServer. All
// methods are safe for concurrent use (each tunnel runs on its own
// goroutine and counts through atomics).
type Server struct {
	name string

	conns       atomic.Int64 // tunnels accepted (telemetry queries excluded)
	badHellos   atomic.Int64 // rejected hellos (bad magic, length, target)
	dialErrors  atomic.Int64 // target dials that failed
	queries     atomic.Int64 // telemetry queries answered
	bytesToTgt  atomic.Int64 // bytes spliced dialer -> target
	bytesToClt  atomic.Int64 // bytes spliced target -> dialer
	activeConns *obs.Gauge   // live tunnels (current + peak)

	// phases reuses the epoch phase taxonomy for the relay's own spans:
	// collect = target dial latency, kernel = tunnel lifetime. Single-shard;
	// the relay has no ranks.
	phases *obs.PhaseSet
}

// NewServer creates a relay server. name labels its telemetry export
// ("relay" when empty).
func NewServer(name string) *Server {
	if name == "" {
		name = "relay"
	}
	return &Server{
		name:        name,
		activeConns: obs.NewGauge(1),
		phases:      obs.NewPhaseSet(1),
	}
}

// Telemetry returns the server's current telemetry export.
func (s *Server) Telemetry() obs.ProcessTelemetry {
	return obs.ProcessTelemetry{
		Process:  s.name,
		PID:      os.Getpid(),
		UptimeNS: obs.Now(),
		Counters: map[string]int64{
			"relay_conns":           s.conns.Load(),
			"relay_bad_hellos":      s.badHellos.Load(),
			"relay_dial_errors":     s.dialErrors.Load(),
			"relay_telemetry_reqs":  s.queries.Load(),
			"relay_bytes_to_target": s.bytesToTgt.Load(),
			"relay_bytes_to_client": s.bytesToClt.Load(),
		},
		Gauges: map[string]obs.GaugeValue{
			"relay_active_conns": {Cur: s.activeConns.Value(), Max: s.activeConns.Max()},
		},
		Phases: s.phases.Snapshot(),
	}
}

// Serve accepts tunnel connections on ln until the listener is closed.
// Each accepted connection is handled on its own goroutine: read the hello,
// then either splice to a fresh dial of the named target or answer a
// telemetry query. A per-connection failure (bad hello, unreachable target)
// closes that connection only.
func (s *Server) Serve(ln net.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.tunnel(c)
	}
}

// Serve runs a fresh anonymous relay server on ln; see Server.Serve. Kept
// for callers that never query telemetry (tests, ad-hoc relays).
func Serve(ln net.Listener) error { return NewServer("relay").Serve(ln) }

// countConn wraps a net.Conn so spliced bytes land in a shared counter.
type countConn struct {
	net.Conn
	n *atomic.Int64
}

func (c countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// tunnel reads one hello and either splices c to a fresh dial of its target
// or answers a telemetry query.
func (s *Server) tunnel(c net.Conn) {
	c.SetReadDeadline(time.Now().Add(helloTimeout))
	hdr := make([]byte, len(Magic)+2)
	if _, err := io.ReadFull(c, hdr); err != nil {
		s.badHellos.Add(1)
		c.Close()
		return
	}
	if string(hdr[:len(TelemetryMagic)]) == TelemetryMagic {
		s.queries.Add(1)
		c.SetWriteDeadline(time.Now().Add(helloTimeout))
		obs.WriteTelemetryFrame(c, s.Telemetry())
		c.Close()
		return
	}
	if string(hdr[:len(Magic)]) != Magic {
		s.badHellos.Add(1)
		c.Close()
		return
	}
	n := binary.LittleEndian.Uint16(hdr[len(Magic):])
	if n == 0 || n > maxTarget {
		s.badHellos.Add(1)
		c.Close()
		return
	}
	target := make([]byte, n)
	if _, err := io.ReadFull(c, target); err != nil {
		s.badHellos.Add(1)
		c.Close()
		return
	}
	network, addr, ok := strings.Cut(string(target), "|")
	if !ok {
		s.badHellos.Add(1)
		c.Close()
		return
	}
	dialStart := obs.Now()
	out, err := net.DialTimeout(network, addr, helloTimeout)
	s.phases.Observe(obs.PhaseCollect, 0, obs.Now()-dialStart)
	if err != nil {
		s.dialErrors.Add(1)
		c.Close()
		return
	}
	s.conns.Add(1)
	s.activeConns.Add(0, 1)
	start := obs.Now()
	c.SetReadDeadline(time.Time{})
	// Splice both directions; when either side ends, close both so the
	// peer observes the disconnect (a killed worker must look like a dead
	// link to the transport, not a stalled one).
	done := make(chan struct{}, 2)
	cp := func(dst, src net.Conn, counted *atomic.Int64) {
		io.Copy(countConn{Conn: dst, n: counted}, src)
		done <- struct{}{}
	}
	go cp(out, c, &s.bytesToTgt)
	go cp(c, out, &s.bytesToClt)
	<-done
	c.Close()
	out.Close()
	<-done
	s.activeConns.Add(0, -1)
	s.phases.Observe(obs.PhaseKernel, 0, obs.Now()-start)
}
