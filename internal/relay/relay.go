// Package relay implements the frame-relay protocol spoken between a
// universe's socket transport and a declpat-worker process: a dialer
// connects to the relay, names a target address in a small hello, and the
// relay splices the connection to a fresh dial of that target. Every byte
// after the hello is copied verbatim in both directions, so the transport's
// handshake, frames, heartbeats, and reconnects all genuinely cross the
// worker process — which is the point: cmd/declpat-worker puts a second OS
// process on the data path without the worker needing to understand frames.
package relay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"time"
)

// Magic opens every relay hello; a connection that does not start with it
// is rejected (most likely a raw transport dial that skipped the relay).
const Magic = "DPRW"

// maxTarget bounds the hello's target string; longer targets are a protocol
// violation, not a configuration.
const maxTarget = 1024

// helloTimeout bounds how long the relay waits for a hello and how long it
// spends dialing the target on the tunnel's behalf.
const helloTimeout = 5 * time.Second

// SplitAddr parses a listen/relay address of the form "tcp://host:port" or
// "unix:///path/to.sock" into (network, address).
func SplitAddr(s string) (network, addr string, err error) {
	scheme, rest, ok := strings.Cut(s, "://")
	if !ok {
		return "", "", fmt.Errorf("relay: address %q is not scheme://address", s)
	}
	switch scheme {
	case "tcp", "tcp4", "tcp6", "unix":
	default:
		return "", "", fmt.Errorf("relay: unsupported scheme %q (want tcp or unix)", scheme)
	}
	if rest == "" {
		return "", "", fmt.Errorf("relay: address %q has an empty host part", s)
	}
	return scheme, rest, nil
}

// Dial connects to the relay at (relayNetwork, relayAddr), sends the hello
// naming (targetNetwork, targetAddr), and returns the spliced connection:
// reads and writes on it reach the target as if dialed directly.
func Dial(relayNetwork, relayAddr, targetNetwork, targetAddr string, timeout time.Duration) (net.Conn, error) {
	target := targetNetwork + "|" + targetAddr
	if len(target) > maxTarget {
		return nil, fmt.Errorf("relay: target %q exceeds %d bytes", target, maxTarget)
	}
	c, err := net.DialTimeout(relayNetwork, relayAddr, timeout)
	if err != nil {
		return nil, err
	}
	hello := make([]byte, 0, len(Magic)+2+len(target))
	hello = append(hello, Magic...)
	hello = binary.LittleEndian.AppendUint16(hello, uint16(len(target)))
	hello = append(hello, target...)
	c.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := c.Write(hello); err != nil {
		c.Close()
		return nil, fmt.Errorf("relay: hello to %s: %w", relayAddr, err)
	}
	c.SetWriteDeadline(time.Time{})
	return c, nil
}

// Serve accepts tunnel connections on ln until the listener is closed.
// Each accepted connection is handled on its own goroutine: read the hello,
// dial the named target, splice. A per-connection failure (bad hello,
// unreachable target) closes that connection only.
func Serve(ln net.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go tunnel(c)
	}
}

// tunnel reads one hello and splices c to a fresh dial of its target.
func tunnel(c net.Conn) {
	c.SetReadDeadline(time.Now().Add(helloTimeout))
	hdr := make([]byte, len(Magic)+2)
	if _, err := io.ReadFull(c, hdr); err != nil || string(hdr[:len(Magic)]) != Magic {
		c.Close()
		return
	}
	n := binary.LittleEndian.Uint16(hdr[len(Magic):])
	if n == 0 || n > maxTarget {
		c.Close()
		return
	}
	target := make([]byte, n)
	if _, err := io.ReadFull(c, target); err != nil {
		c.Close()
		return
	}
	network, addr, ok := strings.Cut(string(target), "|")
	if !ok {
		c.Close()
		return
	}
	out, err := net.DialTimeout(network, addr, helloTimeout)
	if err != nil {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	// Splice both directions; when either side ends, close both so the
	// peer observes the disconnect (a killed worker must look like a dead
	// link to the transport, not a stalled one).
	done := make(chan struct{}, 2)
	cp := func(dst, src net.Conn) {
		io.Copy(dst, src)
		done <- struct{}{}
	}
	go cp(out, c)
	go cp(c, out)
	<-done
	c.Close()
	out.Close()
	<-done
}
